//! Independent matching verifier used by tests and debug assertions.

use crate::Matching;
use pcd_graph::Graph;
use pcd_util::NO_VERTEX;

/// Checks that `m` is a valid maximal matching of `g` over the
/// positive-score subgraph:
///
/// 1. mate array is symmetric and self-free;
/// 2. every matched edge index refers to a real edge whose endpoints are
///    mutually mated, with positive score;
/// 3. each vertex appears in at most one matched edge, and every mated
///    vertex appears in exactly one;
/// 4. maximality: no positive-score edge has both endpoints unmatched.
pub fn verify_matching(g: &Graph, scores: &[f64], m: &Matching) -> Result<(), String> {
    let nv = g.num_vertices();
    if m.mates().len() != nv {
        return Err("mate array length mismatch".into());
    }
    // 1. symmetry.
    for v in 0..nv {
        let p = m.mates()[v];
        if p != NO_VERTEX {
            if p as usize >= nv {
                return Err(format!("mate of v{v} out of range"));
            }
            if p as usize == v {
                return Err(format!("v{v} mated to itself"));
            }
            if m.mates()[p as usize] != v as u32 {
                return Err(format!("mate array asymmetric at v{v}"));
            }
        }
    }
    // 2 & 3. matched edges consistent, vertices used once.
    let mut used = vec![false; nv];
    for &e in m.matched_edges() {
        if e >= g.num_edges() {
            return Err(format!("matched edge {e} out of range"));
        }
        let (i, j, _) = g.edge(e);
        if scores[e] <= 0.0 {
            return Err(format!("matched edge {e} has non-positive score"));
        }
        if m.mates()[i as usize] != j || m.mates()[j as usize] != i {
            return Err(format!("matched edge {e} not reflected in mate array"));
        }
        for v in [i, j] {
            if used[v as usize] {
                return Err(format!("v{v} used by two matched edges"));
            }
            used[v as usize] = true;
        }
    }
    let mated = m.mates().iter().filter(|&&p| p != NO_VERTEX).count();
    if mated != 2 * m.len() {
        return Err(format!(
            "{mated} mated vertices but {} matched edges",
            m.len()
        ));
    }
    // 4. maximality.
    for e in 0..g.num_edges() {
        if scores[e] <= 0.0 {
            continue;
        }
        let (i, j, _) = g.edge(e);
        if m.mates()[i as usize] == NO_VERTEX && m.mates()[j as usize] == NO_VERTEX {
            return Err(format!("matching not maximal: edge {e} = ({i},{j}) free"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matching;

    #[test]
    fn accepts_valid() {
        let g = pcd_gen::classic::path(4);
        let s = vec![1.0; g.num_edges()];
        let m = crate::seq::match_sequential_greedy(&g, &s);
        assert_eq!(verify_matching(&g, &s, &m), Ok(()));
    }

    #[test]
    fn rejects_asymmetric() {
        let g = pcd_gen::classic::path(2);
        let m = Matching::new(vec![1, pcd_util::NO_VERTEX], vec![]);
        assert!(verify_matching(&g, &[1.0], &m)
            .unwrap_err()
            .contains("asymmetric"));
    }

    #[test]
    fn rejects_non_maximal() {
        let g = pcd_gen::classic::path(2);
        let m = Matching::empty(2);
        assert!(verify_matching(&g, &[1.0], &m)
            .unwrap_err()
            .contains("maximal"));
    }

    #[test]
    fn accepts_empty_when_scores_negative() {
        let g = pcd_gen::classic::path(2);
        let m = Matching::empty(2);
        assert_eq!(verify_matching(&g, &[-1.0], &m), Ok(()));
    }

    #[test]
    fn rejects_self_mate() {
        let g = pcd_gen::classic::path(2);
        let m = Matching::new(vec![0, pcd_util::NO_VERTEX], vec![]);
        assert!(verify_matching(&g, &[1.0], &m)
            .unwrap_err()
            .contains("itself"));
    }
}
