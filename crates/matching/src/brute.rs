//! Exact maximum-weight matching by bitmask dynamic programming — the
//! oracle that lets tests *verify* the paper's claim that the greedy
//! matching's weight is "within a factor of two of the maximum possible
//! value" (Preis), instead of taking it on faith.
//!
//! Exponential in `|V|`; restricted to tiny graphs (≤ ~20 vertices).

use crate::Matching;
use pcd_graph::Graph;
use pcd_util::NO_VERTEX;

/// Computes the maximum total score over all matchings of the
/// positive-score subgraph. Panics if the graph has more than 24 vertices.
pub fn max_weight_matching_score(g: &Graph, scores: &[f64]) -> f64 {
    assert!(g.num_vertices() <= 24, "brute force limited to tiny graphs");
    assert_eq!(scores.len(), g.num_edges());
    let edges: Vec<(u32, u32, f64)> = (0..g.num_edges())
        .filter(|&e| scores[e] > 0.0)
        .map(|e| {
            let (i, j, _) = g.edge(e);
            (i, j, scores[e])
        })
        .collect();
    // dp over used-vertex bitmask, memoised on the set of used vertices is
    // too large; instead recurse over edges with branch and bound-free
    // plain DFS (positive edge counts are tiny in the proptest sizes).
    fn dfs(edges: &[(u32, u32, f64)], used: u32) -> f64 {
        match edges.split_first() {
            None => 0.0,
            Some((&(i, j, w), rest)) => {
                // Skip this edge.
                let skip = dfs(rest, used);
                // Take it if both endpoints are free.
                if used & (1 << i) == 0 && used & (1 << j) == 0 {
                    let take = w + dfs(rest, used | (1 << i) | (1 << j));
                    skip.max(take)
                } else {
                    skip
                }
            }
        }
    }
    dfs(&edges, 0)
}

/// Exact maximum-weight matching (edge set), same restrictions.
pub fn max_weight_matching(g: &Graph, scores: &[f64]) -> Matching {
    assert!(g.num_vertices() <= 24, "brute force limited to tiny graphs");
    let edges: Vec<usize> = (0..g.num_edges()).filter(|&e| scores[e] > 0.0).collect();
    fn dfs(g: &Graph, scores: &[f64], edges: &[usize], used: u32) -> (f64, Vec<usize>) {
        match edges.split_first() {
            None => (0.0, Vec::new()),
            Some((&e, rest)) => {
                let (skip_w, skip_set) = dfs(g, scores, rest, used);
                let (i, j, _) = g.edge(e);
                if used & (1 << i) == 0 && used & (1 << j) == 0 {
                    let (mut take_w, mut take_set) =
                        dfs(g, scores, rest, used | (1 << i) | (1 << j));
                    take_w += scores[e];
                    if take_w > skip_w {
                        take_set.push(e);
                        return (take_w, take_set);
                    }
                }
                (skip_w, skip_set)
            }
        }
    }
    let (_, set) = dfs(g, scores, &edges, 0);
    let mut mate = vec![NO_VERTEX; g.num_vertices()];
    for &e in &set {
        let (i, j, _) = g.edge(e);
        mate[i as usize] = j;
        mate[j as usize] = i;
    }
    Matching::new(mate, set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::match_unmatched_list;
    use crate::seq::match_sequential_greedy;

    #[test]
    fn path_optimum_beats_greedy_trap() {
        // Path a-b-c-d with scores 1, 1.5, 1: greedy takes the middle
        // (1.5); optimum takes the outer pair (2.0).
        let g = pcd_gen::classic::path(4);
        let mut s = vec![1.0; g.num_edges()];
        for e in 0..g.num_edges() {
            let (i, j, _) = g.edge(e);
            if (i.min(j), i.max(j)) == (1, 2) {
                s[e] = 1.5;
            }
        }
        assert_eq!(max_weight_matching_score(&g, &s), 2.0);
        let greedy = match_sequential_greedy(&g, &s);
        assert_eq!(greedy.total_score(&s), 1.5);
        // Factor-2 bound holds (1.5 >= 2.0 / 2).
        assert!(greedy.total_score(&s) >= 0.5 * 2.0);
    }

    #[test]
    fn exact_matching_is_valid() {
        let g = pcd_gen::classic::clique(6);
        let s = vec![1.0; g.num_edges()];
        let m = max_weight_matching(&g, &s);
        assert_eq!(crate::verify::verify_matching(&g, &s, &m), Ok(()));
        assert_eq!(m.len(), 3); // perfect matching of K6
    }

    #[test]
    fn all_negative_scores_empty_optimum() {
        let g = pcd_gen::classic::ring(5);
        let s = vec![-1.0; g.num_edges()];
        assert_eq!(max_weight_matching_score(&g, &s), 0.0);
        assert!(max_weight_matching(&g, &s).is_empty());
    }

    #[test]
    fn greedy_half_approximation_spot_checks() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for trial in 0..30 {
            let nv = rng.gen_range(4..12usize);
            let ne = rng.gen_range(3..20usize);
            let edges: Vec<_> = (0..ne)
                .map(|_| {
                    (
                        rng.gen_range(0..nv as u32),
                        rng.gen_range(0..nv as u32),
                        1u64,
                    )
                })
                .collect();
            let g = pcd_graph::builder::from_edges(nv, edges);
            let s: Vec<f64> = (0..g.num_edges())
                .map(|_| rng.gen_range(0.1..10.0f64))
                .collect();
            let opt = max_weight_matching_score(&g, &s);
            for (name, m) in [
                ("greedy", match_sequential_greedy(&g, &s)),
                ("parallel", match_unmatched_list(&g, &s)),
            ] {
                let w = m.total_score(&s);
                assert!(
                    w >= 0.5 * opt - 1e-9 && w <= opt + 1e-9,
                    "trial {trial} {name}: {w} vs opt {opt}"
                );
            }
        }
    }
}
