#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Greedy approximately-maximum-weight maximal matching (§IV-B).
//!
//! Given per-edge scores, the matching selects disjoint community pairs to
//! merge. Three implementations share one result type and one verifier:
//!
//! * [`parallel::match_unmatched_list`] — the paper's improved algorithm:
//!   parallelise over an array of currently-unmatched vertices, each
//!   scanning its own edge bucket, claiming the best eligible edge via a
//!   mutual-best handshake. "Marginal on the Cray XMT but drastic on
//!   Intel-based platforms."
//! * [`edge_sweep::match_edge_sweep`] — the 2011 baseline that sweeps the
//!   *entire* edge array every pass, hot-spotting on high-degree vertices.
//! * [`seq::match_sequential_greedy`] — the classic sequential greedy
//!   (Preis-style), processing edges in descending score order.
//!
//! The edge-sweep variant proposes **every** eligible edge each pass, so
//! its mutual-best pairs are exactly the locally dominant edges and it
//! computes precisely the sequential greedy matching. The unmatched-list
//! variant proposes only each live vertex's single best *bucket* edge, so
//! a vertex can be claimed through a lighter edge while its heaviest
//! incident edge sits unproposed in a busy neighbour's bucket — the
//! matching may differ from greedy (the paper calls its algorithm
//! non-deterministic for the same reason; ours is still deterministic for
//! a fixed thread-independent proposal schedule). All variants produce a
//! matching that is maximal over the positive-score subgraph; the paper
//! argues weight within a factor of two of the maximum.

pub mod brute;
pub mod edge_sweep;
pub mod labelprop;
pub mod parallel;
pub mod seq;
pub mod verify;

pub use labelprop::{match_labelprop_scratch, match_within_labels, propagate_labels, LabelScratch};
pub use parallel::{
    match_unmatched_list, match_unmatched_list_capped, match_unmatched_list_scratch, MatchScratch,
};

use pcd_graph::Graph;
use pcd_util::{VertexId, NO_VERTEX};

/// Outcome of a round-capped matching run ([`match_unmatched_list_capped`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// The matching — always valid and maximal over positive scores,
    /// whether or not the watchdog fired.
    pub matching: Matching,
    /// Parallel rounds executed (excludes the sequential fallback pass).
    pub rounds: usize,
    /// True if the round cap expired and the remaining live vertices were
    /// matched by the sequential greedy fallback.
    pub degraded: bool,
}

/// Result of a matching pass over a community graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// `mate[v]` = matched partner, or [`NO_VERTEX`].
    mate: Vec<VertexId>,
    /// Indices (into the graph's edge arrays) of the matched edges, in
    /// ascending order.
    edges: Vec<usize>,
}

impl Matching {
    pub(crate) fn new(mate: Vec<VertexId>, mut edges: Vec<usize>) -> Self {
        edges.sort_unstable();
        Matching { mate, edges }
    }

    /// An empty matching over `nv` vertices.
    pub fn empty(nv: usize) -> Self {
        Matching {
            mate: vec![NO_VERTEX; nv],
            edges: Vec::new(),
        }
    }

    /// The matched partner of `v`, if any.
    #[inline]
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        let m = self.mate[v as usize];
        (m != NO_VERTEX).then_some(m)
    }

    /// Raw mate array (`NO_VERTEX` = unmatched).
    #[inline]
    pub fn mates(&self) -> &[VertexId] {
        &self.mate
    }

    /// Indices of matched edges, ascending.
    #[inline]
    pub fn matched_edges(&self) -> &[usize] {
        &self.edges
    }

    /// Number of matched pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    /// True if no pairs were matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sum of the scores of matched edges.
    pub fn total_score(&self, scores: &[f64]) -> f64 {
        self.edges.iter().map(|&e| scores[e]).sum()
    }

    /// Builds a `Matching` from raw parts **without validation**. Only for
    /// the fault-injection harness, so tests can hand the driver an
    /// invalid matching and prove the runtime guards reject it.
    #[cfg(feature = "fault-injection")]
    pub fn from_raw_parts(mate: Vec<VertexId>, edges: Vec<usize>) -> Self {
        Matching::new(mate, edges)
    }
}

/// Strict total order on edges used by every implementation:
/// score first, then stored endpoints as tie-breaks. Returns `true` if edge
/// `a` beats edge `b`.
#[inline]
pub(crate) fn edge_beats(g: &Graph, scores: &[f64], a: usize, b: usize) -> bool {
    let ka = (scores[a], g.srcs()[a], g.dsts()[a]);
    let kb = (scores[b], g.srcs()[b], g.dsts()[b]);
    ka > kb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.mate(1), None);
        assert_eq!(m.total_score(&[]), 0.0);
    }

    #[test]
    fn edges_sorted_on_new() {
        let m = Matching::new(vec![1, 0, 3, 2], vec![5, 2]);
        assert_eq!(m.matched_edges(), &[2, 5]);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.len(), 2);
    }
}
