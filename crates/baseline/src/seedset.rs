//! Seed-set expansion via approximate personalised PageRank — the
//! conductance-based local method of Andersen & Lang ("Communities from
//! seed sets", the paper's reference \[22\] motivating the conductance
//! metric).
//!
//! The ACL push algorithm computes an ε-approximate PPR vector supported
//! near the seed; a sweep over vertices ordered by `ppr(v)/vol(v)` returns
//! the prefix with minimum conductance.

use pcd_graph::{Csr, Graph};
use pcd_util::VertexId;
use std::collections::{HashMap, VecDeque};

/// Result of one seed expansion.
#[derive(Debug, Clone)]
pub struct SeedCommunity {
    /// Members, sorted by sweep order (most seed-affiliated first).
    pub members: Vec<VertexId>,
    /// Conductance of the returned cut.
    pub conductance: f64,
}

/// Approximate PPR by the ACL push algorithm: teleport probability
/// `alpha`, residual threshold `epsilon` (per unit volume).
pub fn approximate_ppr(
    csr: &Csr,
    seed: VertexId,
    alpha: f64,
    epsilon: f64,
) -> HashMap<VertexId, f64> {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    assert!(epsilon > 0.0);
    let mut p: HashMap<u32, f64> = HashMap::new();
    let mut r: HashMap<u32, f64> = HashMap::new();
    r.insert(seed, 1.0);
    let mut queue = VecDeque::from([seed]);
    let vol = |v: u32| csr.volume(v).max(1) as f64;
    while let Some(v) = queue.pop_front() {
        let rv = *r.get(&v).unwrap_or(&0.0);
        if rv < epsilon * vol(v) {
            continue;
        }
        // Push: move alpha·r(v) to p(v); spread the rest over neighbours.
        *p.entry(v).or_insert(0.0) += alpha * rv;
        r.insert(v, 0.0);
        let spread = (1.0 - alpha) * rv;
        let total_w: f64 = csr.neighbors(v).map(|(_, w)| w as f64).sum();
        if total_w == 0.0 {
            continue;
        }
        for (u, w) in csr.neighbors(v) {
            let share = spread * w as f64 / total_w;
            let ru = r.entry(u).or_insert(0.0);
            let before = *ru;
            *ru += share;
            if before < epsilon * vol(u) && *ru >= epsilon * vol(u) {
                queue.push_back(u);
            }
        }
    }
    p
}

/// Expands a community around `seed`: PPR push then a conductance sweep,
/// bounded to at most `max_size` members.
pub fn seed_expand(g: &Graph, seed: VertexId, max_size: usize) -> SeedCommunity {
    let csr = Csr::from_graph(g);
    let two_m = (2 * g.total_weight()).max(1) as f64;
    let ppr = approximate_ppr(&csr, seed, 0.15, 1e-6);

    // Sweep order: descending ppr(v)/vol(v).
    let mut order: Vec<(u32, f64)> = ppr
        .iter()
        .map(|(&v, &p)| (v, p / csr.volume(v).max(1) as f64))
        .collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    order.truncate(max_size);

    // Incremental conductance along the sweep.
    let mut in_set: HashMap<u32, bool> = HashMap::new();
    let mut cut = 0f64;
    let mut vol = 0f64;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 1;
    for (idx, &(v, _)) in order.iter().enumerate() {
        in_set.insert(v, true);
        vol += csr.volume(v) as f64;
        for (u, w) in csr.neighbors(v) {
            if *in_set.get(&u).unwrap_or(&false) {
                cut -= w as f64;
            } else {
                cut += w as f64;
            }
        }
        let denom = vol.min(two_m - vol);
        if denom > 0.0 {
            let phi = cut / denom;
            if phi < best_phi {
                best_phi = phi;
                best_len = idx + 1;
            }
        }
    }
    SeedCommunity {
        members: order[..best_len].iter().map(|&(v, _)| v).collect(),
        conductance: if best_phi.is_finite() { best_phi } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_clique_from_seed() {
        let g = pcd_gen::classic::two_cliques(8);
        let c = seed_expand(&g, 2, 16);
        let mut members = c.members.clone();
        members.sort_unstable();
        assert_eq!(
            members,
            (0..8u32).collect::<Vec<_>>(),
            "phi = {}",
            c.conductance
        );
        assert!(c.conductance < 0.05);
    }

    #[test]
    fn seed_in_other_clique() {
        let g = pcd_gen::classic::two_cliques(8);
        let c = seed_expand(&g, 12, 16);
        let mut members = c.members;
        members.sort_unstable();
        assert_eq!(members, (8..16u32).collect::<Vec<_>>());
    }

    #[test]
    fn ppr_concentrates_near_seed() {
        let g = pcd_gen::classic::clique_ring(6, 6);
        let csr = Csr::from_graph(&g);
        let ppr = approximate_ppr(&csr, 0, 0.15, 1e-7);
        // The seed's own clique (vertices 0..6) should hold most mass.
        let local: f64 = (0..6u32).map(|v| ppr.get(&v).copied().unwrap_or(0.0)).sum();
        let total: f64 = ppr.values().sum();
        assert!(local > 0.6 * total, "local {local} of {total}");
    }

    #[test]
    fn recovers_planted_sbm_community() {
        let sbm = pcd_gen::sbm_graph(&pcd_gen::SbmParams {
            num_vertices: 1_500,
            min_community: 30,
            max_community: 60,
            size_exponent: 1.5,
            internal_degree: 12.0,
            external_degree: 1.0,
            seed: 6,
        });
        let seed = 10u32;
        let truth_c = sbm.ground_truth[seed as usize];
        let comm = seed_expand(&sbm.graph, seed, 200);
        let inside = comm
            .members
            .iter()
            .filter(|&&v| sbm.ground_truth[v as usize] == truth_c)
            .count();
        let precision = inside as f64 / comm.members.len() as f64;
        assert!(
            precision > 0.8,
            "precision {precision} ({} members)",
            comm.members.len()
        );
    }

    #[test]
    fn isolated_seed_is_its_own_community() {
        let g = pcd_graph::GraphBuilder::new(3).add_pairs([(1, 2)]).build();
        let c = seed_expand(&g, 0, 5);
        assert_eq!(c.members, vec![0]);
    }
}
