//! Louvain (Blondel et al. 2008): local moving + aggregation.
//!
//! The paper cites this as a related approach "not designed with
//! parallelism in mind"; it is the standard quality yardstick for
//! modularity methods. Deterministic: vertices are visited in index order.

use pcd_graph::{builder, Csr, Graph};
use pcd_util::{VertexId, Weight};
use std::collections::HashMap;

/// Runs Louvain to convergence; returns the final assignment over the
/// original vertices.
pub fn louvain(g: &Graph) -> Vec<VertexId> {
    let mut assignment: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    let mut current = g.clone();
    loop {
        let local = local_move(&current);
        let (compact, k) = pcd_metrics::compact_labels(&local);
        // Project onto original vertices.
        assignment
            .iter_mut()
            .for_each(|a| *a = compact[*a as usize]);
        if k == current.num_vertices() {
            break; // no merge happened anywhere
        }
        current = aggregate(&current, &compact, k);
    }
    assignment
}

/// One Louvain phase: repeatedly sweep vertices, moving each to the
/// neighbouring community with the highest positive modularity gain.
fn local_move(g: &Graph) -> Vec<VertexId> {
    let csr = Csr::from_graph(g);
    let nv = csr.num_vertices();
    let m = g.total_weight();
    let mut comm: Vec<u32> = (0..nv as u32).collect();
    if m == 0 {
        return comm;
    }
    // Community total volumes; vertex volumes.
    let vol_v: Vec<Weight> = (0..nv as u32).map(|v| csr.volume(v)).collect();
    let mut vol_c: Vec<i64> = vol_v.iter().map(|&v| v as i64).collect();

    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 100 {
        improved = false;
        guard += 1;
        let mut links: HashMap<u32, u64> = HashMap::new();
        for v in 0..nv {
            links.clear();
            // Weight from v to each adjacent community.
            for (u, w) in csr.neighbors(v as u32) {
                links
                    .entry(comm[u as usize])
                    .and_modify(|x| *x += w)
                    .or_insert(w);
            }
            let cur = comm[v];
            let kv = vol_v[v] as f64;
            // Gain of moving v from its community (volume excluding v) to c:
            //   Δ = (w_vc − w_v,cur') / m − kv (vol_c − vol_cur') / (2 m²)
            // Standard formulation: compare each candidate's
            //   w_vc/m − kv·vol_c'/(2m²), with vol' excluding v.
            let base_vol_cur = vol_c[cur as usize] as f64 - kv;
            let w_cur = *links.get(&cur).unwrap_or(&0) as f64;
            let mf = m as f64;
            // ΔQ of joining community c (volume excluding v):
            //   w_vc / m − k_v · vol_c / (2 m²)
            let score = |w_c: f64, vol: f64| w_c / mf - kv * vol / (2.0 * mf * mf);
            let cur_score = score(w_cur, base_vol_cur);
            let mut best_c = cur;
            let mut best_score = cur_score;
            let mut cands: Vec<u32> = links.keys().copied().collect();
            cands.sort_unstable(); // deterministic tie-breaking
            for c in cands {
                if c == cur {
                    continue;
                }
                let w_c = links[&c] as f64;
                let s = score(w_c, vol_c[c as usize] as f64);
                if s > best_score + 1e-15 {
                    best_score = s;
                    best_c = c;
                }
            }
            if best_c != cur {
                vol_c[cur as usize] -= vol_v[v] as i64;
                vol_c[best_c as usize] += vol_v[v] as i64;
                comm[v] = best_c;
                improved = true;
            }
        }
    }
    comm
}

/// Builds the aggregated community graph of an assignment.
pub(crate) fn aggregate(g: &Graph, assignment: &[VertexId], k: usize) -> Graph {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(g.num_edges() + k);
    for (i, j, w) in g.edges() {
        edges.push((assignment[i as usize], assignment[j as usize], w));
    }
    for v in 0..g.num_vertices() {
        let s = g.self_loop(v as u32);
        if s > 0 {
            let c = assignment[v];
            edges.push((c, c, s));
        }
    }
    builder::from_edges(k, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_high_modularity() {
        let g = pcd_gen::classic::karate_club();
        let a = louvain(&g);
        let q = pcd_metrics::modularity(&g, &a);
        // Louvain's published karate modularity is ~0.41-0.42.
        assert!(q > 0.38, "q = {q}");
    }

    #[test]
    fn clique_ring_recovers_exactly() {
        let g = pcd_gen::classic::clique_ring(8, 6);
        let truth = pcd_gen::classic::clique_ring_truth(8, 6);
        let a = louvain(&g);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.95, "nmi = {nmi}");
    }

    #[test]
    fn sbm_recovers_planted_partition() {
        let p = pcd_gen::SbmParams {
            num_vertices: 600,
            min_community: 20,
            max_community: 60,
            size_exponent: 1.6,
            internal_degree: 12.0,
            external_degree: 1.0,
            seed: 4,
        };
        let s = pcd_gen::sbm_graph(&p);
        let a = louvain(&s.graph);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &s.ground_truth);
        assert!(nmi > 0.8, "nmi = {nmi}");
    }

    #[test]
    fn edgeless_graph_stays_singleton() {
        let g = Graph::empty(5);
        let a = louvain(&g);
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn beats_or_matches_cnm_on_karate() {
        let g = pcd_gen::classic::karate_club();
        let ql = pcd_metrics::modularity(&g, &louvain(&g));
        let qc = pcd_metrics::modularity(&g, &crate::cnm(&g));
        assert!(ql >= qc - 0.02, "louvain {ql} vs cnm {qc}");
    }
}
