//! Clauset–Newman–Moore greedy modularity agglomeration.
//!
//! The sequential algorithm the paper's matching replaces: keep a priority
//! queue of merge deltas, repeatedly merge the single globally best pair.
//! Lazy invalidation: each community carries a stamp bumped on merge; queue
//! entries recording older stamps are discarded on pop.

use pcd_graph::{Csr, Graph};
use pcd_metrics::modularity::delta_modularity;
use pcd_util::{VertexId, Weight};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug)]
struct Entry {
    dq: f64,
    a: u32,
    b: u32,
    stamp_a: u32,
    stamp_b: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.dq
            .total_cmp(&other.dq)
            .then(self.a.cmp(&other.a))
            .then(self.b.cmp(&other.b))
    }
}

/// Runs CNM to the modularity local maximum; returns the assignment
/// (dense community ids per vertex).
pub fn cnm(g: &Graph) -> Vec<VertexId> {
    let csr = Csr::from_graph(g);
    let nv = csr.num_vertices();
    let m = g.total_weight();
    if nv == 0 || m == 0 {
        return (0..nv as u32).collect();
    }

    // Community state; communities are identified by their current root id.
    let mut parent: Vec<u32> = (0..nv as u32).collect();
    let mut stamp: Vec<u32> = vec![0; nv];
    let mut vol: Vec<Weight> = (0..nv as u32).map(|v| csr.volume(v)).collect();
    let mut adj: Vec<HashMap<u32, Weight>> = (0..nv)
        .map(|v| {
            let mut h = HashMap::new();
            for (u, w) in csr.neighbors(v as u32) {
                if u as usize != v {
                    *h.entry(u).or_insert(0) += w;
                }
            }
            h
        })
        .collect();

    let mut heap = BinaryHeap::new();
    for v in 0..nv as u32 {
        for (&u, &w) in &adj[v as usize] {
            if v < u {
                let dq = delta_modularity(m, w, vol[v as usize], vol[u as usize]);
                if dq > 0.0 {
                    heap.push(Entry {
                        dq,
                        a: v,
                        b: u,
                        stamp_a: 0,
                        stamp_b: 0,
                    });
                }
            }
        }
    }

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            let gp = parent[parent[v as usize] as usize];
            parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    while let Some(e) = heap.pop() {
        let (a, b) = (e.a, e.b);
        // Stale if either community has merged since the entry was pushed.
        if stamp[a as usize] != e.stamp_a || stamp[b as usize] != e.stamp_b {
            continue;
        }
        if e.dq <= 0.0 {
            break;
        }
        // Merge smaller adjacency into larger (weighted union).
        let (big, small) = if adj[a as usize].len() >= adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        parent[small as usize] = big;
        stamp[a as usize] += 1;
        stamp[b as usize] += 1;
        vol[big as usize] += vol[small as usize];

        let small_adj = std::mem::take(&mut adj[small as usize]);
        for (nbr, w) in small_adj {
            if nbr == big {
                continue;
            }
            // Rewire nbr: small -> big.
            if let Some(w_old) = adj[nbr as usize].remove(&small) {
                debug_assert_eq!(w_old, w);
            }
            *adj[nbr as usize].entry(big).or_insert(0) += w;
            *adj[big as usize].entry(nbr).or_insert(0) += w;
        }
        adj[big as usize].remove(&small);
        adj[big as usize].remove(&big);

        // Fresh queue entries for the merged community.
        let entries: Vec<(u32, Weight)> = adj[big as usize].iter().map(|(&n, &w)| (n, w)).collect();
        for (nbr, w) in entries {
            let dq = delta_modularity(m, w, vol[big as usize], vol[nbr as usize]);
            if dq > 0.0 {
                let (x, y) = if big < nbr { (big, nbr) } else { (nbr, big) };
                heap.push(Entry {
                    dq,
                    a: x,
                    b: y,
                    stamp_a: stamp[x as usize],
                    stamp_b: stamp[y as usize],
                });
            }
        }
    }

    // Resolve roots and compact to dense labels.
    let roots: Vec<u32> = (0..nv as u32).map(|v| find(&mut parent, v)).collect();
    pcd_metrics::compact_labels(&roots).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_modularity_near_cnm_published() {
        let g = pcd_gen::classic::karate_club();
        let a = cnm(&g);
        let q = pcd_metrics::modularity(&g, &a);
        // CNM's published karate modularity is ~0.3807.
        assert!(q > 0.35, "q = {q}");
    }

    #[test]
    fn two_cliques_split_exactly() {
        let g = pcd_gen::classic::two_cliques(6);
        let a = cnm(&g);
        let truth: Vec<u32> = (0..12).map(|v| (v / 6) as u32).collect();
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.99, "nmi = {nmi}");
    }

    #[test]
    fn clique_ring_recovers_cliques() {
        let g = pcd_gen::classic::clique_ring(6, 8);
        let truth = pcd_gen::classic::clique_ring_truth(6, 8);
        let a = cnm(&g);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.9, "nmi = {nmi}");
    }

    #[test]
    fn empty_and_edgeless() {
        let g = Graph::empty(4);
        assert_eq!(cnm(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn never_decreases_modularity_vs_singletons() {
        let g = pcd_gen::rmat_graph(&pcd_gen::RmatParams::paper(8, 2));
        let a = cnm(&g);
        let q = pcd_metrics::modularity(&g, &a);
        let singles: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert!(q >= pcd_metrics::modularity(&g, &singles));
    }
}
