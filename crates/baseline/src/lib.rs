#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Sequential community-detection baselines.
//!
//! The paper replaces the sequential priority-queue agglomeration of
//! Clauset–Newman–Moore with a parallel matching, and cross-checks quality
//! against SNAP's sequential implementation. This crate supplies the
//! sequential reference points:
//!
//! * [`cnm`] — greedy modularity maximisation with a lazy priority queue
//!   (CNM \[13\]/\[28\]): merge the single best pair per step.
//! * [`louvain`] — Blondel et al.'s local-moving + aggregation heuristic
//!   \[17\], the strongest quality baseline.
//! * [`labelprop`] — weighted label propagation, a cheap extra baseline.
//! * [`plouvain`] — relaxed *parallel* Louvain (Grappolo-style), the
//!   state-of-the-practice comparison for the matching-based detector.
//! * [`seedset`] — Andersen–Lang seed-set expansion via approximate
//!   personalised PageRank and a conductance sweep (paper reference \[22\]).
//!
//! All return assignment vectors compatible with `pcd-metrics`. The
//! sequential methods are deterministic; `plouvain` is intentionally racy
//! (that is its design point) and only its quality is asserted.

pub mod cnm;
pub mod labelprop;
pub mod louvain;
pub mod plouvain;
pub mod seedset;

pub use cnm::cnm;
pub use labelprop::label_propagation;
pub use louvain::louvain;
pub use plouvain::louvain_parallel;
pub use seedset::{approximate_ppr, seed_expand, SeedCommunity};
