//! Relaxed parallel Louvain (Grappolo-style).
//!
//! The paper's successors (Grappolo, NetworKit) parallelise Louvain by
//! letting every vertex evaluate and apply its best move concurrently with
//! racy reads of the evolving partition. The result is non-deterministic
//! but high quality in practice; it serves here as the "state of the
//! practice" comparison point for the matching-based detector.

use crate::louvain::aggregate;
use pcd_graph::{Csr, Graph};
use pcd_util::sync::{AtomicI64, AtomicU32, AtomicUsize, RELAXED};
use pcd_util::{VertexId, Weight};
use rayon::prelude::*;
use std::collections::HashMap;

/// Runs parallel Louvain to convergence over aggregation rounds.
pub fn louvain_parallel(g: &Graph) -> Vec<VertexId> {
    let mut assignment: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    let mut current = g.clone();
    for _ in 0..32 {
        let local = local_move_parallel(&current);
        let (compact, k) = pcd_metrics::compact_labels(&local);
        assignment
            .par_iter_mut()
            .for_each(|a| *a = compact[*a as usize]);
        if k == current.num_vertices() {
            break;
        }
        current = aggregate(&current, &compact, k);
    }
    assignment
}

/// One parallel local-moving phase: vertices concurrently adopt the
/// neighbouring community with the best modularity gain, reading the
/// partition racily and updating community volumes atomically.
fn local_move_parallel(g: &Graph) -> Vec<VertexId> {
    let csr = Csr::from_graph(g);
    let nv = csr.num_vertices();
    let m = g.total_weight();
    if m == 0 || nv == 0 {
        return (0..nv as u32).collect();
    }
    let mf = m as f64;
    let vol_v: Vec<Weight> = (0..nv as u32).map(|v| csr.volume(v)).collect();
    let comm: Vec<AtomicU32> = (0..nv as u32).map(AtomicU32::new).collect();
    let vol_c: Vec<AtomicI64> = vol_v.iter().map(|&v| AtomicI64::new(v as i64)).collect();

    for _sweep in 0..50 {
        let moved = AtomicUsize::new(0);
        (0..nv).into_par_iter().for_each(|v| {
            if csr.degree(v as u32) == 0 {
                return;
            }
            // ORDERING: RELAXED loads everywhere — this baseline is
            // deliberately racy (Louvain-style asynchronous sweeps read
            // possibly-stale labels/volumes); no memory is published
            // through these cells, only monotone convergence pressure.
            let mut links: HashMap<u32, u64> = HashMap::new();
            for (u, w) in csr.neighbors(v as u32) {
                *links.entry(comm[u as usize].load(RELAXED)).or_insert(0) += w;
            }
            let cur = comm[v].load(RELAXED);
            let kv = vol_v[v] as f64;
            let score = |w_c: f64, vol: f64| w_c / mf - kv * vol / (2.0 * mf * mf);
            let w_cur = *links.get(&cur).unwrap_or(&0) as f64;
            let cur_score = score(w_cur, vol_c[cur as usize].load(RELAXED) as f64 - kv);
            let mut cands: Vec<u32> = links.keys().copied().collect();
            cands.sort_unstable();
            let mut best = cur;
            let mut best_score = cur_score + 1e-12;
            for c in cands {
                if c == cur {
                    continue;
                }
                let s = score(links[&c] as f64, vol_c[c as usize].load(RELAXED) as f64);
                if s > best_score {
                    best_score = s;
                    best = c;
                }
            }
            if best != cur {
                // ORDERING: RELAXED is enough — racy but volume-conserving:
                // the fetch_add/sub pair keeps Σ vol_c == 2m regardless of
                // interleaving, and the sweep barrier (par_iter join)
                // orders publication; `moved` is a counter, not a flag.
                comm[v].store(best, RELAXED);
                vol_c[cur as usize].fetch_sub(vol_v[v] as i64, RELAXED);
                vol_c[best as usize].fetch_add(vol_v[v] as i64, RELAXED);
                moved.fetch_add(1, RELAXED);
            }
        });
        if moved.load(RELAXED) == 0 {
            break;
        }
    }
    comm.into_iter().map(|c| c.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_quality_matches_sequential_class() {
        let g = pcd_gen::classic::karate_club();
        let a = louvain_parallel(&g);
        let q = pcd_metrics::modularity(&g, &a);
        assert!(q > 0.35, "q = {q}");
    }

    #[test]
    fn clique_ring_recovered() {
        let g = pcd_gen::classic::clique_ring(8, 6);
        let truth = pcd_gen::classic::clique_ring_truth(8, 6);
        let a = louvain_parallel(&g);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.9, "nmi = {nmi}");
    }

    #[test]
    fn sbm_planted_partition_recovered() {
        let sbm = pcd_gen::sbm_graph(&pcd_gen::SbmParams {
            num_vertices: 1_000,
            min_community: 20,
            max_community: 60,
            size_exponent: 1.6,
            internal_degree: 12.0,
            external_degree: 1.0,
            seed: 12,
        });
        let a = louvain_parallel(&sbm.graph);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &sbm.ground_truth);
        assert!(nmi > 0.8, "nmi = {nmi}");
    }

    #[test]
    fn volume_conservation_under_concurrency() {
        // Run the parallel phase on a mid-size graph and verify the final
        // assignment's modularity is sane (no corruption from races).
        let g = pcd_gen::rmat_graph(&pcd_gen::RmatParams::paper(11, 8));
        let a = louvain_parallel(&g);
        let q = pcd_metrics::modularity(&g, &a);
        assert!((-1.0..=1.0).contains(&q));
        assert_eq!(a.len(), g.num_vertices());
    }

    #[test]
    fn edgeless_graph() {
        let g = Graph::empty(4);
        assert_eq!(louvain_parallel(&g), vec![0, 1, 2, 3]);
    }
}
