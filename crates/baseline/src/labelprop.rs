//! Weighted label propagation — a cheap, metric-free baseline.
//!
//! Each vertex repeatedly adopts the label with the largest total incident
//! weight among its neighbours (asynchronous sweeps in index order).
//! Ties are broken by *retention* (keep the current label if it is among
//! the maxima) and otherwise by a deterministic per-(sweep, vertex) hash,
//! which prevents the lowest label from flooding across community bridges
//! while keeping the algorithm reproducible.

use pcd_graph::{Csr, Graph};
use pcd_util::rng::mix64;
use pcd_util::VertexId;
use std::collections::HashMap;

/// Runs label propagation until stable or `max_sweeps`; returns dense
/// community labels.
pub fn label_propagation(g: &Graph, max_sweeps: usize) -> Vec<VertexId> {
    let csr = Csr::from_graph(g);
    let nv = csr.num_vertices();
    let mut label: Vec<u32> = (0..nv as u32).collect();
    let mut tally: HashMap<u32, u64> = HashMap::new();
    for sweep in 0..max_sweeps {
        let mut changed = false;
        for v in 0..nv {
            if csr.degree(v as u32) == 0 {
                continue;
            }
            tally.clear();
            for (u, w) in csr.neighbors(v as u32) {
                *tally.entry(label[u as usize]).or_insert(0) += w;
            }
            // analyze: allow(panic, reason = "zero-degree vertices were skipped above, so the tally has at least one entry")
            let max_w = *tally.values().max().expect("non-empty tally");
            // Retention: a current label tied for the max stays.
            if tally.get(&label[v]) == Some(&max_w) {
                continue;
            }
            let salt = mix64((sweep as u64) << 32 | v as u64);
            let best = tally
                .iter()
                .filter(|&(_, &w)| w == max_w)
                .map(|(&l, _)| l)
                .max_by_key(|&l| mix64(l as u64 ^ salt))
                // analyze: allow(panic, reason = "the label carrying max_w itself survives the filter")
                .expect("non-empty argmax");
            if best != label[v] {
                label[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    pcd_metrics::compact_labels(&label).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cliques_split() {
        let g = pcd_gen::classic::two_cliques(6);
        let a = label_propagation(&g, 50);
        let truth: Vec<u32> = (0..12).map(|v| (v / 6) as u32).collect();
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.9, "nmi = {nmi}");
    }

    #[test]
    fn isolated_vertices_keep_labels() {
        let g = pcd_graph::GraphBuilder::new(4).add_pairs([(0, 1)]).build();
        let a = label_propagation(&g, 10);
        // 2 and 3 remain singletons; 0 and 1 join.
        assert_eq!(a[0], a[1]);
        assert_ne!(a[2], a[3]);
        assert_ne!(a[2], a[0]);
    }

    #[test]
    fn deterministic() {
        let g = pcd_gen::classic::clique_ring(5, 6);
        assert_eq!(label_propagation(&g, 30), label_propagation(&g, 30));
    }

    #[test]
    fn clique_ring_mostly_recovered() {
        let g = pcd_gen::classic::clique_ring(6, 8);
        let truth = pcd_gen::classic::clique_ring_truth(6, 8);
        let a = label_propagation(&g, 50);
        let nmi = pcd_metrics::normalized_mutual_information(&a, &truth);
        assert!(nmi > 0.8, "nmi = {nmi}");
    }
}
