//! Parallel prefix sums and order-preserving stream compaction.
//!
//! Contraction assigns new vertex ids and bucket offsets with an exclusive
//! prefix sum (§IV-C of the paper mentions "synchronizing on a prefix sum to
//! compute bucket offsets"). The implementation is the classic two-pass
//! blocked scan: per-block sums, a sequential scan over the (few) block
//! totals, then a parallel fix-up pass.
//!
//! [`Compactor`] builds the same two-pass structure into a reusable
//! keep-flag compaction: fixed chunks count their survivors, a prefix sum
//! assigns each chunk a stable output offset, and a scatter pass writes
//! survivors in order. Unlike `par_iter().filter().collect()` it is
//! allocation-free at steady state (the chunk-count buffer and the output
//! vector retain capacity) and its output order is the input order by
//! construction, independent of thread count.

use crate::sync::SendPtr;
use rayon::prelude::*;

/// Minimum work per block; below this a sequential scan is faster.
const SEQ_CUTOFF: usize = 1 << 14;

/// In-place exclusive prefix sum over `usize` values; returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and returns `8`.
pub fn exclusive_prefix_sum(data: &mut [usize]) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    if n <= SEQ_CUTOFF {
        return seq_exclusive(data);
    }
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks);
    // Pass 1: per-block inclusive sums of the raw data.
    let mut block_sums: Vec<usize> = data
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    // Scan block totals sequentially (tiny).
    let total = seq_exclusive(&mut block_sums);
    // Pass 2: per-block exclusive scan seeded with the block offset.
    data.par_chunks_mut(block)
        .zip(block_sums.par_iter())
        .for_each(|(chunk, &offset)| {
            let mut acc = offset;
            for x in chunk.iter_mut() {
                let v = *x;
                *x = acc;
                acc += v;
            }
        });
    total
}

fn seq_exclusive(data: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in data.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Exclusive prefix sum into a fresh vector of length `data.len() + 1`, with
/// the grand total in the last slot. This is the CSR "xadj" shape.
pub fn offsets_from_counts(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    out.extend_from_slice(counts);
    out.push(0);
    exclusive_prefix_sum(&mut out[..counts.len()]);
    let total: usize = if counts.is_empty() {
        0
    } else {
        out[counts.len() - 1] + counts[counts.len() - 1]
    };
    out[counts.len()] = total;
    out
}

/// Elements per compaction chunk. Chunk boundaries are fixed by index, not
/// by thread count, so the output order (= input order) is identical for
/// every schedule.
const COMPACT_CHUNK: usize = 4096;

/// Reusable order-preserving stream compaction over a keep-flag array.
///
/// Owns its per-chunk survivor-count buffer; after the first call at a
/// given problem size, further calls perform no heap allocation (buffers
/// only shrink logically as the level loop's graphs contract).
#[derive(Debug, Default)]
pub struct Compactor {
    chunk_counts: Vec<usize>,
}

impl Compactor {
    /// A compactor with no retained capacity.
    pub fn new() -> Self {
        Compactor::default()
    }

    /// Heap bytes retained by this compactor (capacity, not length) — the
    /// ledger the engine's scratch-memory ceiling sums.
    pub fn scratch_bytes(&self) -> usize {
        self.chunk_counts.capacity() * std::mem::size_of::<usize>()
    }

    /// Writes `src[i]` for every `i` with `keep[i]`, in input order, into
    /// `out` (cleared first; capacity is reused).
    pub fn compact_into<T: Copy + Send + Sync>(
        &mut self,
        src: &[T],
        keep: &[bool],
        out: &mut Vec<T>,
    ) {
        assert_eq!(src.len(), keep.len());
        self.compact_with(keep, |i| src[i], out);
    }

    /// Writes every index `i` (as `u32`) with `keep[i]`, in input order,
    /// into `out` (cleared first; capacity is reused).
    pub fn compact_indices_into(&mut self, keep: &[bool], out: &mut Vec<u32>) {
        self.compact_with(keep, |i| i as u32, out);
    }

    fn compact_with<T: Copy + Send + Sync>(
        &mut self,
        keep: &[bool],
        get: impl Fn(usize) -> T + Sync,
        out: &mut Vec<T>,
    ) {
        let n = keep.len();
        out.clear();
        if n == 0 {
            return;
        }
        if n <= COMPACT_CHUNK {
            out.extend((0..n).filter(|&i| keep[i]).map(get));
            return;
        }
        let nchunks = n.div_ceil(COMPACT_CHUNK);
        self.chunk_counts.clear();
        self.chunk_counts.resize(nchunks, 0);
        self.chunk_counts
            .par_iter_mut()
            .enumerate()
            .for_each(|(c, cnt)| {
                let lo = c * COMPACT_CHUNK;
                let hi = (lo + COMPACT_CHUNK).min(n);
                *cnt = keep[lo..hi].iter().filter(|&&k| k).count();
            });
        let total = exclusive_prefix_sum(&mut self.chunk_counts);
        if total == 0 {
            return;
        }
        // `T: Copy` has no drop glue, so filling with the first survivor
        // (there is one: total > 0) is a plain overwritable fill.
        // analyze: allow(panic, reason = "total > 0 was checked above, so at least one keep flag is set")
        let filler = get(keep.iter().position(|&k| k).unwrap());
        out.resize(total, filler);
        let offsets: &[usize] = &self.chunk_counts;
        let ptr = SendPtr(out.as_mut_ptr());
        (0..nchunks).into_par_iter().for_each(|c| {
            let ptr = &ptr;
            let lo = c * COMPACT_CHUNK;
            let hi = (lo + COMPACT_CHUNK).min(n);
            let mut pos = offsets[c];
            for i in lo..hi {
                if keep[i] {
                    // SAFETY: `offsets` is the exclusive prefix sum of the
                    // per-chunk survivor counts, so each chunk's write range
                    // `[offsets[c], offsets[c] + count_c)` is disjoint from
                    // every other task's and in-bounds for `out` (resized to
                    // the grand total above, exclusively borrowed for the
                    // region).
                    unsafe { *ptr.0.add(pos) = get(i) };
                    pos += 1;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scan() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn small_scan() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn large_scan_matches_sequential() {
        let n = 100_000;
        let orig: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 17).collect();
        let mut par = orig.clone();
        let t_par = exclusive_prefix_sum(&mut par);
        let mut acc = 0usize;
        let mut seq = Vec::with_capacity(n);
        for &x in &orig {
            seq.push(acc);
            acc += x;
        }
        assert_eq!(par, seq);
        assert_eq!(t_par, acc);
    }

    #[test]
    fn offsets_shape() {
        let counts = vec![2usize, 0, 3, 1];
        let off = offsets_from_counts(&counts);
        assert_eq!(off, vec![0, 2, 2, 5, 6]);
    }

    #[test]
    fn offsets_empty() {
        assert_eq!(offsets_from_counts(&[]), vec![0]);
    }

    #[test]
    fn compactor_small_matches_filter() {
        let src: Vec<u32> = (0..100).collect();
        let keep: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let mut c = Compactor::new();
        let mut out = Vec::new();
        c.compact_into(&src, &keep, &mut out);
        let expect: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn compactor_large_preserves_order() {
        let n = 3 * COMPACT_CHUNK + 17;
        let src: Vec<u32> = (0..n as u32).collect();
        let keep: Vec<bool> = (0..n).map(|i| (i * 2654435761) % 7 < 3).collect();
        let mut c = Compactor::new();
        let mut out = Vec::new();
        c.compact_into(&src, &keep, &mut out);
        let expect: Vec<u32> = (0..n).filter(|&i| keep[i]).map(|i| i as u32).collect();
        assert_eq!(out, expect);
        // Index variant agrees.
        let mut idx = Vec::new();
        c.compact_indices_into(&keep, &mut idx);
        assert_eq!(idx, expect);
    }

    #[test]
    fn compactor_reuses_capacity() {
        let n = 2 * COMPACT_CHUNK;
        let src: Vec<u64> = vec![7; n];
        let keep = vec![true; n];
        let mut c = Compactor::new();
        let mut out = Vec::new();
        c.compact_into(&src, &keep, &mut out);
        let cap = out.capacity();
        let p = out.as_ptr();
        c.compact_into(&src, &keep, &mut out);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), p);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn compactor_none_and_all() {
        let n = COMPACT_CHUNK + 1;
        let src: Vec<u32> = (0..n as u32).collect();
        let mut c = Compactor::new();
        let mut out = vec![99u32; 5];
        c.compact_into(&src, &vec![false; n], &mut out);
        assert!(out.is_empty());
        c.compact_into(&src, &vec![true; n], &mut out);
        assert_eq!(out, src);
    }
}
