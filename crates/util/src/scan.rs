//! Parallel prefix sums.
//!
//! Contraction assigns new vertex ids and bucket offsets with an exclusive
//! prefix sum (§IV-C of the paper mentions "synchronizing on a prefix sum to
//! compute bucket offsets"). The implementation is the classic two-pass
//! blocked scan: per-block sums, a sequential scan over the (few) block
//! totals, then a parallel fix-up pass.

use rayon::prelude::*;

/// Minimum work per block; below this a sequential scan is faster.
const SEQ_CUTOFF: usize = 1 << 14;

/// In-place exclusive prefix sum over `usize` values; returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and returns `8`.
pub fn exclusive_prefix_sum(data: &mut [usize]) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    if n <= SEQ_CUTOFF {
        return seq_exclusive(data);
    }
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks);
    // Pass 1: per-block inclusive sums of the raw data.
    let mut block_sums: Vec<usize> = data
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    // Scan block totals sequentially (tiny).
    let total = seq_exclusive(&mut block_sums);
    // Pass 2: per-block exclusive scan seeded with the block offset.
    data.par_chunks_mut(block)
        .zip(block_sums.par_iter())
        .for_each(|(chunk, &offset)| {
            let mut acc = offset;
            for x in chunk.iter_mut() {
                let v = *x;
                *x = acc;
                acc += v;
            }
        });
    total
}

fn seq_exclusive(data: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in data.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Exclusive prefix sum into a fresh vector of length `data.len() + 1`, with
/// the grand total in the last slot. This is the CSR "xadj" shape.
pub fn offsets_from_counts(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    out.extend_from_slice(counts);
    out.push(0);
    exclusive_prefix_sum(&mut out[..counts.len()]);
    let total: usize = if counts.is_empty() {
        0
    } else {
        out[counts.len() - 1] + counts[counts.len() - 1]
    };
    out[counts.len()] = total;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scan() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn small_scan() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn large_scan_matches_sequential() {
        let n = 100_000;
        let orig: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 17).collect();
        let mut par = orig.clone();
        let t_par = exclusive_prefix_sum(&mut par);
        let mut acc = 0usize;
        let mut seq = Vec::with_capacity(n);
        for &x in &orig {
            seq.push(acc);
            acc += x;
        }
        assert_eq!(par, seq);
        assert_eq!(t_par, acc);
    }

    #[test]
    fn offsets_shape() {
        let counts = vec![2usize, 0, 3, 1];
        let off = offsets_from_counts(&counts);
        assert_eq!(off, vec![0, 2, 2, 5, 6]);
    }

    #[test]
    fn offsets_empty() {
        assert_eq!(offsets_from_counts(&[]), vec![0]);
    }
}
