//! Lock-free atomic helpers.
//!
//! The matching phase needs a per-vertex "best proposal so far" register that
//! many threads race to improve. On the Cray XMT the paper used full/empty
//! bits; under OpenMP it used locks. Here each register is a single
//! `AtomicU64` holding a packed, totally ordered `(score, vertex)` key and
//! updates are commutative CAS-maxes, which makes the matching result
//! independent of thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maps an `f64` to a `u64` such that the unsigned integer order matches the
/// total order on floats (with `-0.0 < +0.0`, and NaN ordered above all
/// finite values — callers must not feed NaN scores; debug builds assert).
///
/// This is the standard sign-flip trick: non-negative floats get the sign
/// bit set; negative floats are bitwise-inverted.
#[inline]
pub fn ord_f64(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "NaN score passed to ord_f64");
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`ord_f64`].
#[inline]
pub fn unord_f64(k: u64) -> f64 {
    let bits = if k >> 63 == 1 { k & !(1 << 63) } else { !k };
    f64::from_bits(bits)
}

/// Atomically sets `cell` to `max(cell, val)` and returns the previous value.
#[inline]
pub fn fetch_max_u64(cell: &AtomicU64, val: u64) -> u64 {
    cell.fetch_max(val, Ordering::AcqRel)
}

/// Atomically adds `val` to an `f64` stored as bits in an `AtomicU64`.
///
/// Only used on cold paths (quality metrics); hot paths use integer weights
/// precisely so they can use plain `fetch_add`.
pub fn fetch_add_f64(cell: &AtomicU64, val: f64) -> f64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + val;
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::AcqRel, Ordering::Relaxed) {
            Ok(prev) => return f64::from_bits(prev),
            Err(actual) => cur = actual,
        }
    }
}

/// Reinterprets a mutable slice of `u64` as atomic cells.
///
/// Safe: `AtomicU64` has the same layout as `u64`, and the unique borrow
/// guarantees no other references exist for the lifetime of the view.
#[inline]
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
}

/// Reinterprets a mutable slice of `u32` as atomic cells (same argument as
/// [`as_atomic_u64`]).
#[inline]
pub fn as_atomic_u32(slice: &mut [u32]) -> &[std::sync::atomic::AtomicU32] {
    unsafe { &*(slice as *mut [u32] as *const [std::sync::atomic::AtomicU32]) }
}

/// A packed `(score, vertex)` proposal key with a total order: primary on
/// score, secondary on vertex id. Packing both into one `u64` would lose
/// `f64` precision, so the key spans two words conceptually but we only need
/// the *edge index* to recover everything; see `pcd-matching` for use.
///
/// Here we provide the simpler 64-bit packing used by the *old* edge-sweep
/// matching baseline: a 32-bit monotone score approximation and the partner
/// id. The new matching keeps exact `f64` scores in a side array and CASes
/// edge indices instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedBest(pub u64);

impl PackedBest {
    /// The "no proposal yet" register value.
    pub const EMPTY: PackedBest = PackedBest(0);

    /// Packs a score and partner. The score is squashed to a monotone `f32`;
    /// ties broken by partner id (higher id wins, matching the paper's
    /// "score then vertex indices" total order arbitrarily oriented).
    #[inline]
    pub fn new(score: f64, partner: u32) -> Self {
        let s = score as f32; // monotone squash
        let bits = s.to_bits();
        let key = if bits >> 31 == 0 { bits | (1 << 31) } else { !bits };
        PackedBest(((key as u64) << 32) | partner as u64)
    }

    #[inline]
    /// The packed partner id.
    pub fn partner(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    #[inline]
    /// True if no proposal has been packed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ord_f64_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.5,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(ord_f64(w[0]) <= ord_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(ord_f64(-0.0) < ord_f64(0.0));
    }

    #[test]
    fn ord_f64_roundtrips() {
        for &x in &[-123.75, -0.0, 0.0, 0.5, 42.0, f64::INFINITY] {
            let y = unord_f64(ord_f64(x));
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fetch_max_keeps_largest() {
        let c = AtomicU64::new(5);
        assert_eq!(fetch_max_u64(&c, 3), 5);
        assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 5);
        assert_eq!(fetch_max_u64(&c, 9), 5);
        assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 9);
    }

    #[test]
    fn fetch_add_f64_accumulates() {
        let c = AtomicU64::new(0f64.to_bits());
        fetch_add_f64(&c, 1.5);
        fetch_add_f64(&c, 2.25);
        assert_eq!(f64::from_bits(c.load(std::sync::atomic::Ordering::Relaxed)), 3.75);
    }

    #[test]
    fn fetch_add_f64_parallel_sum() {
        use rayon::prelude::*;
        let c = AtomicU64::new(0f64.to_bits());
        (0..1000).into_par_iter().for_each(|_| {
            fetch_add_f64(&c, 0.25);
        });
        assert_eq!(f64::from_bits(c.load(std::sync::atomic::Ordering::Relaxed)), 250.0);
    }

    #[test]
    fn packed_best_orders_by_score_then_partner() {
        let a = PackedBest::new(1.0, 7);
        let b = PackedBest::new(2.0, 3);
        assert!(b.0 > a.0);
        let c = PackedBest::new(1.0, 9);
        assert!(c.0 > a.0); // tie on score -> higher partner wins
        assert_eq!(c.partner(), 9);
        assert!(PackedBest::EMPTY.is_empty());
        // negative scores still order correctly and beat EMPTY? They must not:
        // EMPTY is 0 and negative-score keys are > 0 after the flip, which is
        // fine because the matching never proposes non-positive scores.
        assert!(PackedBest::new(-1.0, 1).0 > 0);
    }

    #[test]
    fn as_atomic_views_alias_storage() {
        let mut v = vec![0u64; 4];
        {
            let a = as_atomic_u64(&mut v);
            a[2].store(99, std::sync::atomic::Ordering::Relaxed);
        }
        assert_eq!(v[2], 99);
        let mut w = vec![0u32; 4];
        {
            let a = as_atomic_u32(&mut w);
            a[1].store(7, std::sync::atomic::Ordering::Relaxed);
        }
        assert_eq!(w[1], 7);
    }
}
