//! Wall-clock timing and run statistics for the experiment harness.
//!
//! The paper runs every configuration three times "to capture some of the
//! variability"; [`RunStats`] aggregates such repeated measurements.

use std::time::{Duration, Instant};

/// A simple scope timer.
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Timer::start();
    let out = f();
    (out, t.elapsed_secs())
}

/// Monotonic tick source for the trace recorder: integer nanoseconds since
/// the clock's own epoch (its construction). Spans stamped by one clock are
/// directly comparable; ticks from different clocks are not. Reading the
/// clock never allocates, so recorders may stamp ticks in steady state.
#[derive(Debug, Clone, Copy)]
pub struct TickClock {
    epoch: Instant,
}

impl TickClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        TickClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch. Saturates at `u64::MAX`
    /// (about 584 years), which no detection run reaches.
    pub fn ticks(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts a tick count from this clock into seconds.
    pub fn ticks_to_secs(ticks: u64) -> f64 {
        ticks as f64 * 1e-9
    }
}

impl Default for TickClock {
    fn default() -> Self {
        TickClock::new()
    }
}

/// Min / median / max / mean over repeated runs (seconds or any metric).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Sorted samples.
    pub samples: Vec<f64>,
}

impl RunStats {
    /// Builds stats from raw samples (sorts them).
    pub fn new(mut samples: Vec<f64>) -> Self {
        // analyze: allow(panic, reason = "bench-harness stats: a NaN timing sample is a bug worth dying on")
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        RunStats { samples }
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        // analyze: allow(panic, reason = "documented contract: stats over zero samples are a caller bug")
        *self.samples.first().expect("empty RunStats")
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        // analyze: allow(panic, reason = "documented contract: stats over zero samples are a caller bug")
        *self.samples.last().expect("empty RunStats")
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        let n = self.samples.len();
        assert!(n > 0, "empty RunStats");
        if n % 2 == 1 {
            self.samples[n / 2]
        } else {
            0.5 * (self.samples[n / 2 - 1] + self.samples[n / 2])
        }
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Formats a duration in seconds with sensible precision (`12.3s`, `45ms`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats a rate such as edges/second in engineering notation, mirroring
/// the paper's Table III (`6.90e6` edges/s style).
pub fn fmt_rate(r: f64) -> String {
    format!("{:.2e}", r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_odd() {
        let s = RunStats::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn stats_even() {
        let s = RunStats::new(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 7);
        assert_eq!(v, 7);
        assert!(secs >= 0.0);
    }

    #[test]
    fn tick_clock_is_monotonic_from_its_epoch() {
        let clock = TickClock::new();
        let a = clock.ticks();
        let b = clock.ticks();
        assert!(b >= a);
        assert_eq!(TickClock::ticks_to_secs(1_500_000_000), 1.5);
        assert_eq!(TickClock::ticks_to_secs(0), 0.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.0451), "45.1ms");
        assert_eq!(fmt_secs(0.0000207), "20.7us");
    }
}
