#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Shared low-level utilities for the parallel community detection crates.
//!
//! The paper's Cray XMT implementation leans on full/empty bits and the
//! OpenMP port on explicit locks; this crate collects the Rust equivalents
//! used throughout the workspace:
//!
//! * [`sync`] — the audited synchronisation layer: every atomic type,
//!   ordering choice and lock-free retry loop in the workspace routes
//!   through it (enforced by `cargo xtask lint`), and `--cfg loom` swaps
//!   in loom's model-checked doubles. Includes the CAS-based fetch-max
//!   over packed `(score, index)` keys and atomic `f64` accumulation that
//!   replace XMT full/empty-bit hot spots.
//! * [`scan`] — parallel exclusive prefix sums, used to assign contiguous
//!   vertex ids and bucket offsets during contraction.
//! * [`rng`] — deterministic per-index ChaCha streams so generated graphs do
//!   not depend on thread count or work partitioning.
//! * [`timing`] — wall-clock timers and run statistics for the benchmark
//!   harness (the paper reports min/median over three runs).
//! * [`pool`] — helpers for running a closure on a rayon pool of an exact
//!   size, the analogue of `OMP_NUM_THREADS` sweeps.
//! * [`error`] — the crate-spanning structured [`PcdError`] every fallible
//!   path (readers, builders, CLI, runtime invariant guards) reports
//!   through instead of panicking.

#[cfg(feature = "alloc-stats")]
pub mod alloc_stats;
pub mod error;
pub mod pool;
pub mod rng;
pub mod scan;
pub mod sync;
pub mod timing;

pub use error::{PcdError, Phase};

/// Vertex identifier. The paper stores 64-bit labels on the XMT and 32-bit
/// labels for the largest graph on Intel; 32 bits cover every graph this
/// reproduction targets.
pub type VertexId = u32;

/// Edge weight: the *count* of input-graph edges collapsed into a
/// community-graph edge (or contained in a community, for self-loops).
/// Integer weights make parallel accumulation order-independent.
pub type Weight = u64;

/// Sentinel meaning "no vertex" (unmatched, no parent, ...).
pub const NO_VERTEX: VertexId = VertexId::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_max() {
        assert_eq!(NO_VERTEX, u32::MAX);
    }
}
