//! The crate-spanning structured error type.
//!
//! The paper's reference code is a research harness that trusts its input;
//! a production service cannot. Every untrusted-input path (graph readers,
//! the builder, CLI parsing, configuration) and every runtime invariant
//! guard reports through [`PcdError`] instead of panicking, so one
//! malformed graph or one miscompiled kernel cannot take a whole serving
//! process down. Hand-rolled (`Display` + `std::error::Error`) — no new
//! dependencies.

use std::fmt;

/// Which phase of the agglomerative loop a runtime invariant guard was
/// protecting when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Edge scoring (scores must be finite).
    Score,
    /// Matching (must be a valid matching: symmetric, self-free, each
    /// vertex used at most once, maximal over positive scores).
    Match,
    /// Contraction (must conserve weight and relabel onto dense new ids).
    Contract,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Score => write!(f, "score"),
            Phase::Match => write!(f, "match"),
            Phase::Contract => write!(f, "contract"),
        }
    }
}

/// Structured error for every fallible path in the workspace.
#[derive(Debug)]
pub enum PcdError {
    /// An underlying I/O failure (file missing, short read, ...).
    Io(std::io::Error),
    /// Malformed text input at a 1-based line number.
    Parse {
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// Structurally corrupt input (bad magic, implausible header, ids or
    /// weights out of range) not attributable to one text line.
    Corrupt {
        /// What was wrong.
        msg: String,
    },
    /// An invalid [`Config`](https://docs.rs/pcd-core)-style configuration.
    Config {
        /// What was wrong.
        msg: String,
    },
    /// A command-line usage error (unknown flag, missing argument).
    Usage {
        /// What was wrong.
        msg: String,
    },
    /// A runtime invariant guard fired: the hierarchy state at `level`
    /// would have been corrupted by the `phase` kernel.
    InvariantViolation {
        /// Contraction level (1-based) at which the guard fired.
        level: usize,
        /// The kernel phase the guard was protecting.
        phase: Phase,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A resource budget was breached under strict mode. Non-strict runs
    /// never surface this: they return the best-effort partition from
    /// completed levels instead.
    BudgetExceeded {
        /// Which budget fired: `"deadline"`, `"cancelled"`,
        /// `"memory-ceiling"`, or `"max-levels"`.
        resource: &'static str,
        /// Contraction levels completed before the breach was detected.
        levels_completed: usize,
        /// Human-readable description of the breached limit.
        detail: String,
    },
    /// A detection engine was poisoned by a panicking worker. The engine
    /// has been torn down and rebuilt; only the panicking graph's result
    /// is lost.
    EnginePoisoned {
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// An error wrapped with higher-level context (e.g. a file path).
    Context {
        /// The added context.
        context: String,
        /// The underlying error.
        source: Box<PcdError>,
    },
}

impl PcdError {
    /// Builds a [`PcdError::Parse`] with a 0-based line index as produced
    /// by `lines().enumerate()`.
    pub fn parse_at(lineno0: usize, msg: impl Into<String>) -> Self {
        PcdError::Parse {
            line: lineno0 + 1,
            msg: msg.into(),
        }
    }

    /// Builds a [`PcdError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        PcdError::Corrupt { msg: msg.into() }
    }

    /// Builds a [`PcdError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        PcdError::Config { msg: msg.into() }
    }

    /// Builds a [`PcdError::Usage`].
    pub fn usage(msg: impl Into<String>) -> Self {
        PcdError::Usage { msg: msg.into() }
    }

    /// Builds a [`PcdError::InvariantViolation`].
    pub fn invariant(level: usize, phase: Phase, detail: impl Into<String>) -> Self {
        PcdError::InvariantViolation {
            level,
            phase,
            detail: detail.into(),
        }
    }

    /// Builds a [`PcdError::BudgetExceeded`].
    pub fn budget(
        resource: &'static str,
        levels_completed: usize,
        detail: impl Into<String>,
    ) -> Self {
        PcdError::BudgetExceeded {
            resource,
            levels_completed,
            detail: detail.into(),
        }
    }

    /// Builds a [`PcdError::EnginePoisoned`].
    pub fn poisoned(detail: impl Into<String>) -> Self {
        PcdError::EnginePoisoned {
            detail: detail.into(),
        }
    }

    /// Wraps `self` with context (typically a file path or command name).
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> Self {
        PcdError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// True if this error (or the error it wraps) is an
    /// [`PcdError::InvariantViolation`].
    pub fn is_invariant_violation(&self) -> bool {
        matches!(self.root(), PcdError::InvariantViolation { .. })
    }

    /// True if this error (or the error it wraps) is a
    /// [`PcdError::BudgetExceeded`].
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self.root(), PcdError::BudgetExceeded { .. })
    }

    /// True if this error (or the error it wraps) is an
    /// [`PcdError::EnginePoisoned`].
    pub fn is_engine_poisoned(&self) -> bool {
        matches!(self.root(), PcdError::EnginePoisoned { .. })
    }

    /// The innermost error, unwrapping any [`PcdError::Context`] layers.
    /// Callers that classify errors (the CLI's exit codes) branch on this
    /// so wrapping never changes a classification.
    pub fn root(&self) -> &PcdError {
        match self {
            PcdError::Context { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for PcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcdError::Io(e) => write!(f, "io error: {e}"),
            PcdError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            PcdError::Corrupt { msg } => write!(f, "corrupt input: {msg}"),
            PcdError::Config { msg } => write!(f, "invalid configuration: {msg}"),
            PcdError::Usage { msg } => write!(f, "{msg}"),
            PcdError::InvariantViolation {
                level,
                phase,
                detail,
            } => {
                write!(
                    f,
                    "invariant violation at level {level} in {phase} phase: {detail}"
                )
            }
            PcdError::BudgetExceeded {
                resource,
                levels_completed,
                detail,
            } => {
                write!(
                    f,
                    "budget exceeded ({resource}) after {levels_completed} completed level(s): \
                     {detail}"
                )
            }
            PcdError::EnginePoisoned { detail } => {
                write!(f, "detection engine poisoned by a worker panic: {detail}")
            }
            PcdError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for PcdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcdError::Io(e) => Some(e),
            PcdError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PcdError {
    fn from(e: std::io::Error) -> Self {
        PcdError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_formats() {
        let e = PcdError::parse_at(4, "unparsable weight");
        assert_eq!(e.to_string(), "line 5: unparsable weight");
        let e = PcdError::invariant(2, Phase::Contract, "weight lost");
        assert_eq!(
            e.to_string(),
            "invariant violation at level 2 in contract phase: weight lost"
        );
        let e = PcdError::corrupt("bad magic").context("graph.bin");
        assert_eq!(e.to_string(), "graph.bin: corrupt input: bad magic");
    }

    #[test]
    fn io_source_is_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short");
        let e: PcdError = inner.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("short"));
    }

    #[test]
    fn invariant_detection_through_context() {
        let e = PcdError::invariant(1, Phase::Score, "NaN").context("detect");
        assert!(e.is_invariant_violation());
        assert!(!PcdError::usage("nope").is_invariant_violation());
    }

    #[test]
    fn budget_and_poison_classify_through_context() {
        let e = PcdError::budget("deadline", 3, "5ms elapsed").context("detect");
        assert!(e.is_budget_exceeded());
        assert!(!e.is_invariant_violation());
        assert!(e.to_string().contains("budget exceeded (deadline)"));
        assert!(e.to_string().contains("3 completed level(s)"));

        let p = PcdError::poisoned("index out of bounds").context("batch");
        assert!(p.is_engine_poisoned());
        assert!(!p.is_budget_exceeded());
        assert!(p.to_string().contains("poisoned"));
        assert!(matches!(p.root(), PcdError::EnginePoisoned { .. }));
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Score.to_string(), "score");
        assert_eq!(Phase::Match.to_string(), "match");
        assert_eq!(Phase::Contract.to_string(), "contract");
    }
}
