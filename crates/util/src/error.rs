//! The crate-spanning structured error type.
//!
//! The paper's reference code is a research harness that trusts its input;
//! a production service cannot. Every untrusted-input path (graph readers,
//! the builder, CLI parsing, configuration) and every runtime invariant
//! guard reports through [`PcdError`] instead of panicking, so one
//! malformed graph or one miscompiled kernel cannot take a whole serving
//! process down. Hand-rolled (`Display` + `std::error::Error`) — no new
//! dependencies.

use std::fmt;

/// Which phase of the agglomerative loop a runtime invariant guard was
/// protecting when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Edge scoring (scores must be finite).
    Score,
    /// Matching (must be a valid matching: symmetric, self-free, each
    /// vertex used at most once, maximal over positive scores).
    Match,
    /// Contraction (must conserve weight and relabel onto dense new ids).
    Contract,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Score => write!(f, "score"),
            Phase::Match => write!(f, "match"),
            Phase::Contract => write!(f, "contract"),
        }
    }
}

/// Structured error for every fallible path in the workspace.
#[derive(Debug)]
pub enum PcdError {
    /// An underlying I/O failure (file missing, short read, ...).
    Io(std::io::Error),
    /// Malformed text input at a 1-based line number.
    Parse {
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// Structurally corrupt input (bad magic, implausible header, ids or
    /// weights out of range) not attributable to one text line.
    Corrupt {
        /// What was wrong.
        msg: String,
    },
    /// An invalid [`Config`](https://docs.rs/pcd-core)-style configuration.
    Config {
        /// What was wrong.
        msg: String,
    },
    /// A command-line usage error (unknown flag, missing argument).
    Usage {
        /// What was wrong.
        msg: String,
    },
    /// A runtime invariant guard fired: the hierarchy state at `level`
    /// would have been corrupted by the `phase` kernel.
    InvariantViolation {
        /// Contraction level (1-based) at which the guard fired.
        level: usize,
        /// The kernel phase the guard was protecting.
        phase: Phase,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// An error wrapped with higher-level context (e.g. a file path).
    Context {
        /// The added context.
        context: String,
        /// The underlying error.
        source: Box<PcdError>,
    },
}

impl PcdError {
    /// Builds a [`PcdError::Parse`] with a 0-based line index as produced
    /// by `lines().enumerate()`.
    pub fn parse_at(lineno0: usize, msg: impl Into<String>) -> Self {
        PcdError::Parse {
            line: lineno0 + 1,
            msg: msg.into(),
        }
    }

    /// Builds a [`PcdError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        PcdError::Corrupt { msg: msg.into() }
    }

    /// Builds a [`PcdError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        PcdError::Config { msg: msg.into() }
    }

    /// Builds a [`PcdError::Usage`].
    pub fn usage(msg: impl Into<String>) -> Self {
        PcdError::Usage { msg: msg.into() }
    }

    /// Builds a [`PcdError::InvariantViolation`].
    pub fn invariant(level: usize, phase: Phase, detail: impl Into<String>) -> Self {
        PcdError::InvariantViolation {
            level,
            phase,
            detail: detail.into(),
        }
    }

    /// Wraps `self` with context (typically a file path or command name).
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> Self {
        PcdError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// True if this error (or the error it wraps) is an
    /// [`PcdError::InvariantViolation`].
    pub fn is_invariant_violation(&self) -> bool {
        match self {
            PcdError::InvariantViolation { .. } => true,
            PcdError::Context { source, .. } => source.is_invariant_violation(),
            _ => false,
        }
    }
}

impl fmt::Display for PcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcdError::Io(e) => write!(f, "io error: {e}"),
            PcdError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            PcdError::Corrupt { msg } => write!(f, "corrupt input: {msg}"),
            PcdError::Config { msg } => write!(f, "invalid configuration: {msg}"),
            PcdError::Usage { msg } => write!(f, "{msg}"),
            PcdError::InvariantViolation {
                level,
                phase,
                detail,
            } => {
                write!(
                    f,
                    "invariant violation at level {level} in {phase} phase: {detail}"
                )
            }
            PcdError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for PcdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcdError::Io(e) => Some(e),
            PcdError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PcdError {
    fn from(e: std::io::Error) -> Self {
        PcdError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_formats() {
        let e = PcdError::parse_at(4, "unparsable weight");
        assert_eq!(e.to_string(), "line 5: unparsable weight");
        let e = PcdError::invariant(2, Phase::Contract, "weight lost");
        assert_eq!(
            e.to_string(),
            "invariant violation at level 2 in contract phase: weight lost"
        );
        let e = PcdError::corrupt("bad magic").context("graph.bin");
        assert_eq!(e.to_string(), "graph.bin: corrupt input: bad magic");
    }

    #[test]
    fn io_source_is_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short");
        let e: PcdError = inner.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("short"));
    }

    #[test]
    fn invariant_detection_through_context() {
        let e = PcdError::invariant(1, Phase::Score, "NaN").context("detect");
        assert!(e.is_invariant_violation());
        assert!(!PcdError::usage("nope").is_invariant_violation());
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Score.to_string(), "score");
        assert_eq!(Phase::Match.to_string(), "match");
        assert_eq!(Phase::Contract.to_string(), "contract");
    }
}
