//! Rayon thread-pool helpers.
//!
//! The paper sweeps `OMP_NUM_THREADS` (or XMT processor counts); the
//! benchmark harness sweeps rayon pool sizes through [`with_threads`].

/// Runs `f` inside a dedicated rayon pool with exactly `threads` workers.
///
/// All `par_iter` work spawned inside `f` executes on that pool, so a sweep
/// over `threads` reproduces the paper's thread-count scaling axis.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// The thread counts used for a scaling sweep on this host: powers of two up
/// to the number of logical CPUs, always including the maximum.
pub fn sweep_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = Vec::new();
    let mut t = 1;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_limits_pool() {
        let seen = with_threads(2, || {
            (0..64)
                .into_par_iter()
                .map(|_| rayon::current_num_threads())
                .max()
                .unwrap()
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn with_threads_returns_value() {
        assert_eq!(with_threads(1, || 41 + 1), 42);
    }

    #[test]
    fn sweep_is_sorted_unique_and_ends_at_max() {
        let counts = sweep_thread_counts();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(counts[0], 1);
        let max = std::thread::available_parallelism().unwrap().get();
        assert_eq!(*counts.last().unwrap(), max);
    }
}
