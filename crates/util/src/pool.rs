//! Rayon thread-pool helpers.
//!
//! The paper sweeps `OMP_NUM_THREADS` (or XMT processor counts); the
//! benchmark harness sweeps rayon pool sizes through [`with_threads`].

use crate::sync::{AtomicU32, RELAXED};

static NEXT_THREAD_ORDINAL: AtomicU32 = AtomicU32::new(0);

thread_local! {
    // ORDERING: RELAXED — the fetch_add only needs a unique ordinal per
    // thread (atomicity); nothing is published through the counter.
    static THREAD_ORDINAL: u32 = NEXT_THREAD_ORDINAL.fetch_add(1, RELAXED);
}

/// A small dense id for the calling thread, assigned on first use in
/// process-wide first-come order. Unlike [`std::thread::ThreadId`] it fits
/// a trace record, and unlike rayon's pool index it is defined on every
/// thread (the main thread included). Stable for the thread's lifetime;
/// ids of exited threads are not reused.
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|o| *o)
}

/// Runs `f` inside a dedicated rayon pool with exactly `threads` workers.
///
/// All `par_iter` work spawned inside `f` executes on that pool, so a sweep
/// over `threads` reproduces the paper's thread-count scaling axis.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        // analyze: allow(panic, reason = "pool construction fails only on OS thread-spawn failure; die loudly")
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Pins the **global** rayon pool to exactly `threads` workers, so
/// `par_iter` work outside any [`with_threads`] scope (a CLI run, a bench
/// harness's setup phase) stops silently defaulting to whatever rayon
/// picked at first use. Returns `true` if the pool was pinned, `false` if
/// the global pool was already initialized (first caller wins — rayon's
/// global pool is build-once). `threads == 0` is a no-op that leaves
/// rayon's own default in place and reports `true`.
pub fn pin_global(threads: usize) -> bool {
    if threads == 0 {
        return true;
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .is_ok()
}

/// The thread counts used for a scaling sweep on this host: powers of two up
/// to the number of logical CPUs, always including the maximum.
pub fn sweep_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = Vec::new();
    let mut t = 1;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_limits_pool() {
        let seen = with_threads(2, || {
            (0..64)
                .into_par_iter()
                .map(|_| rayon::current_num_threads())
                .max()
                .unwrap()
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn with_threads_returns_value() {
        assert_eq!(with_threads(1, || 41 + 1), 42);
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "ordinal changed between calls");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other, "two threads shared an ordinal");
    }

    #[test]
    fn pin_global_zero_is_noop_and_repins_are_rejected() {
        assert!(pin_global(0), "0 leaves rayon's default untouched");
        // The global pool is build-once: whatever happened first in this
        // process (an earlier pin or rayon's lazy default), a second
        // explicit pin cannot succeed twice in a row.
        let first = pin_global(2);
        let second = pin_global(3);
        assert!(
            !(first && second),
            "two explicit pins both claimed the pool"
        );
    }

    #[test]
    fn sweep_is_sorted_unique_and_ends_at_max() {
        let counts = sweep_thread_counts();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(counts[0], 1);
        let max = std::thread::available_parallelism().unwrap().get();
        assert_eq!(*counts.last().unwrap(), max);
    }
}
