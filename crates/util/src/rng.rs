//! Deterministic, partition-independent random number streams.
//!
//! Graph generation must not change when the thread count changes, or the
//! scaling experiments would compare runs on *different* graphs. Each unit of
//! work (an edge index, a vertex index) derives its own ChaCha8 stream from
//! `(seed, index)`, so any parallel schedule produces identical output.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derives an independent RNG for work item `index` under `seed`.
///
/// ChaCha8 is a counter-mode cipher: distinct `(seed, stream)` pairs give
/// statistically independent streams, and construction is O(1).
#[inline]
pub fn stream(seed: u64, index: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(index);
    rng
}

/// A small, fast, non-cryptographic mixer for hashing indices (SplitMix64
/// finalizer). Used where full RNG quality is unnecessary, e.g. picking a
/// deterministic "random" tie-break order.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream(42, 7);
        let mut b = stream(42, 7);
        let xa: [u64; 4] = [a.gen(), a.gen(), a.gen(), a.gen()];
        let xb: [u64; 4] = [b.gen(), b.gen(), b.gen(), b.gen()];
        assert_eq!(xa, xb);
    }

    #[test]
    fn streams_differ_by_index() {
        let mut a = stream(42, 0);
        let mut b = stream(42, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = stream(1, 0);
        let mut b = stream(2, 0);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Spot-check injectivity on a small sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}
