//! The audited synchronisation layer — **every** atomic in the workspace
//! routes through this module.
//!
//! The paper's kernels stay correct under arbitrary interleavings via
//! full/empty bits (Cray XMT) or locks (OpenMP). This port replaces both
//! with lock-free atomics, which concentrates all memory-ordering
//! reasoning in one reviewable place: here. Kernels import atomic types
//! and ordering constants from `pcd_util::sync` and never name
//! `std::sync::atomic` or an `Ordering::` variant directly — `cargo xtask
//! lint` fails the build otherwise (see `xtask/src/main.rs` for the
//! allowlist).
//!
//! # Ordering discipline
//!
//! The workspace uses exactly three synchronisation patterns; each maps to
//! one documented ordering constant below.
//!
//! 1. **Fork-join accumulation** ([`RELAXED`]): commutative RMWs
//!    (`fetch_add`, `fetch_min`) or disjoint/idempotent stores inside a
//!    rayon parallel region, read only after the region ends. The rayon
//!    join is the happens-before edge; the atomics only need atomicity.
//! 2. **CAS publish/observe** ([`ACQ_REL`] / [`ACQUIRE`]): a register
//!    whose winning value is *read by other threads in the same parallel
//!    region* (the matcher's best-proposal registers). The successful RMW
//!    is `AcqRel`; the racing readers load with `Acquire`.
//! 3. **Optimistic scan** ([`RELAXED`]): the initial load and the failure
//!    ordering of a CAS loop. A stale value only costs a retry; the
//!    success ordering of the CAS provides the synchronisation.
//!
//! `Release`-only stores and `SeqCst` are deliberately absent: no kernel
//! needs a store-release without an RMW, and nothing relies on a single
//! total order of unrelated atomics. Add a constant (with a use-case doc)
//! before reaching for either.
//!
//! # Model checking and dynamic analysis
//!
//! * **loom** — building with `RUSTFLAGS="--cfg loom"` swaps every type
//!   below for its [`loom`](https://docs.rs/loom) double. The exhaustive
//!   2–3-thread models live in `tools/loom` (a standalone crate, excluded
//!   from the workspace so the `loom` dependency never enters the main
//!   build graph): `cd tools/loom && RUSTFLAGS="--cfg loom" cargo test
//!   --release`.
//! * **Miri** — `cargo +nightly miri test -p pcd-util --lib` covers the
//!   `as_atomic_*` reinterprets; `cargo +nightly miri test --test
//!   miri_smoke` runs a tiny end-to-end detection.
//! * **ThreadSanitizer** — `RUSTFLAGS="-Zsanitizer=thread" cargo +nightly
//!   test -Zbuild-std --target x86_64-unknown-linux-gnu -p pcd-matching
//!   -p pcd-contract`.
//!
//! All three run in CI (`.github/workflows/ci.yml`); DESIGN.md §9 has the
//! full discipline write-up.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// `Ordering::Relaxed` — atomicity without inter-thread ordering.
///
/// Legitimate uses (patterns 1 and 3 in the module docs):
/// * commutative RMWs (`fetch_add` histograms/counters, `fetch_min` label
///   hooking) whose results are read only after the enclosing rayon
///   region joins;
/// * stores to disjoint indices claimed via a `fetch_add` cursor, read
///   after the join;
/// * idempotent racing stores where every writer writes the same value
///   (the matcher's mate stores);
/// * the optimistic initial load and the failure ordering of a CAS loop.
///
/// Never use it to *publish* data another thread reads before the join.
pub const RELAXED: Ordering = Ordering::Relaxed;

/// `Ordering::Acquire` — observe a register published by an [`ACQ_REL`]
/// RMW *within the same parallel region* (pattern 2). The matcher's
/// resolve pass loads best-proposal registers with this so that a register
/// value implies the proposing thread's prior writes are visible.
pub const ACQUIRE: Ordering = Ordering::Acquire;

/// `Ordering::AcqRel` — a read-modify-write that both observes the
/// current winner and publishes a new one (pattern 2): the matcher's
/// CAS-max proposal loops and packed fetch-max registers. Failure
/// orderings stay [`RELAXED`]; a failed CAS publishes nothing.
pub const ACQ_REL: Ordering = Ordering::AcqRel;

/// Maps an `f64` to a `u64` such that the unsigned integer order matches the
/// total order on floats (with `-0.0 < +0.0`, and NaN ordered above all
/// finite values — callers must not feed NaN scores; debug builds assert).
///
/// This is the standard sign-flip trick: non-negative floats get the sign
/// bit set; negative floats are bitwise-inverted.
#[inline]
pub fn ord_f64(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "NaN score passed to ord_f64");
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`ord_f64`].
#[inline]
pub fn unord_f64(k: u64) -> f64 {
    let bits = if k >> 63 == 1 { k & !(1 << 63) } else { !k };
    f64::from_bits(bits)
}

/// Atomically sets `cell` to `max(cell, val)` and returns the previous
/// value. `AcqRel` because the winning value is observed by racing readers
/// (pattern 2).
#[inline]
pub fn fetch_max_u64(cell: &AtomicU64, val: u64) -> u64 {
    #[cfg(not(loom))]
    {
        cell.fetch_max(val, ACQ_REL)
    }
    #[cfg(loom)]
    {
        // loom's fetch_max support lags the std API; an equivalent CAS
        // loop keeps the model faithful to the access pattern.
        let mut cur = cell.load(RELAXED);
        while val > cur {
            match cell.compare_exchange_weak(cur, val, ACQ_REL, RELAXED) {
                Ok(prev) => return prev,
                Err(actual) => cur = actual,
            }
        }
        cur
    }
}

/// CAS loop that installs `new` for as long as `improves(current)` holds;
/// returns `true` if `new` was installed, `false` once the current value
/// stops being improvable. This is the workspace's one blessed lock-free
/// retry loop (matcher proposals, atomic `f64` accumulation).
///
/// `improves` must describe a *stable* strict partial order on values
/// (e.g. "strictly better under a total order on scores") — otherwise two
/// threads can livelock replacing each other. The loop is commutative for
/// such orders: the final register value is independent of interleaving.
#[inline]
pub fn cas_improve_u64(cell: &AtomicU64, new: u64, mut improves: impl FnMut(u64) -> bool) -> bool {
    let mut cur = cell.load(RELAXED);
    while improves(cur) {
        match cell.compare_exchange_weak(cur, new, ACQ_REL, RELAXED) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Atomically adds `val` to an `f64` stored as bits in an `AtomicU64`.
///
/// Only used on cold paths (quality metrics); hot paths use integer weights
/// precisely so they can use plain `fetch_add`.
pub fn fetch_add_f64(cell: &AtomicU64, val: f64) -> f64 {
    let mut cur = cell.load(RELAXED);
    loop {
        let new = f64::from_bits(cur) + val;
        match cell.compare_exchange_weak(cur, new.to_bits(), ACQ_REL, RELAXED) {
            Ok(prev) => return f64::from_bits(prev),
            Err(actual) => cur = actual,
        }
    }
}

// The `as_atomic_*` reinterprets are meaningless under loom (its atomics
// are fat tracking structs, not transparent wrappers), so the loom models
// exercise the algorithms through ordinary atomic arrays instead.
#[cfg(not(loom))]
mod reinterpret {
    use super::{AtomicU32, AtomicU64};

    // `as_atomic_u64` is sound only if the layouts agree exactly and the
    // plain integer is at least as aligned as its atomic counterpart.
    // Guaranteed on every mainstream 64-bit target, but targets where
    // `u64` is 4-byte-aligned (e.g. x86 32-bit) exist: fail the *build*
    // there, not the program.
    const _: () = assert!(
        std::mem::size_of::<u64>() == std::mem::size_of::<AtomicU64>()
            && std::mem::align_of::<u64>() >= std::mem::align_of::<AtomicU64>(),
        "u64 is under-aligned or mis-sized for AtomicU64 on this target"
    );
    const _: () = assert!(
        std::mem::size_of::<u32>() == std::mem::size_of::<AtomicU32>()
            && std::mem::align_of::<u32>() >= std::mem::align_of::<AtomicU32>(),
        "u32 is under-aligned or mis-sized for AtomicU32 on this target"
    );
    const _: () = assert!(
        std::mem::size_of::<usize>() == std::mem::size_of::<super::AtomicUsize>()
            && std::mem::align_of::<usize>() >= std::mem::align_of::<super::AtomicUsize>(),
        "usize is under-aligned or mis-sized for AtomicUsize on this target"
    );

    /// Reinterprets a mutable slice of `u64` as atomic cells.
    #[inline]
    pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
        // SAFETY: `AtomicU64` is `repr(transparent)` over `u64` with
        // identical size and compatible alignment (checked by the const
        // asserts above), and the unique `&mut` borrow we consume
        // guarantees no other reference to the storage exists for the
        // lifetime of the returned shared view.
        unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
    }

    /// Reinterprets a mutable slice of `u32` as atomic cells (same argument
    /// as [`as_atomic_u64`]).
    #[inline]
    pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
        // SAFETY: as in `as_atomic_u64` — layout compatibility is checked
        // at compile time and the `&mut` borrow guarantees uniqueness.
        unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
    }

    /// Reinterprets a mutable slice of `usize` as atomic cells (same
    /// argument as [`as_atomic_u64`]). Lets reusable `Vec<usize>` scratch
    /// buffers serve as bucket counters without per-level
    /// `Vec<AtomicUsize>` allocations.
    #[inline]
    pub fn as_atomic_usize(slice: &mut [usize]) -> &[super::AtomicUsize] {
        // SAFETY: as in `as_atomic_u64` — layout compatibility is checked
        // at compile time and the `&mut` borrow guarantees uniqueness.
        unsafe { &*(slice as *mut [usize] as *const [super::AtomicUsize]) }
    }
}
#[cfg(not(loom))]
pub use reinterpret::{as_atomic_u32, as_atomic_u64, as_atomic_usize};

/// A raw pointer blessed for cross-thread sharing during a parallel region
/// whose tasks write **provably disjoint index ranges** of one exclusively
/// borrowed allocation (bucket sorting, chunked compaction).
///
/// This is the workspace's one sanctioned way to hand rayon tasks
/// overlapping-lifetime views of a single `&mut` buffer; keeping it here —
/// in the audited sync layer — rather than ad hoc in each kernel keeps the
/// disjointness arguments reviewable in one place. Every use site must
/// state its disjointness proof in a `SAFETY:` comment.
#[derive(Debug, Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);

// SAFETY: the pointer is shared only inside a parallel region over storage
// exclusively borrowed for that region, and each task dereferences a
// disjoint index range (callers prove this per use site); accesses never
// alias, so shared references to the wrapper are harmless.
unsafe impl<T> Sync for SendPtr<T> {}
// SAFETY: moving the pointer value across threads is trivially fine; every
// dereference is covered by the caller's disjoint-range argument.
unsafe impl<T> Send for SendPtr<T> {}

/// A shareable cooperative cancellation flag.
///
/// Clones share one underlying flag: any holder may [`cancel`]
/// (`CancelToken::cancel`), and the detection engine polls
/// [`is_cancelled`](CancelToken::is_cancelled) at phase boundaries only —
/// never inside kernel hot loops. Cancellation is *cooperative*: setting
/// the flag does not interrupt a running kernel, it makes the engine stop
/// agglomerating at the next boundary and return the best-effort partition
/// from completed levels.
///
/// Both accesses are [`RELAXED`] (pattern 1 / pattern 3 of the module
/// docs): the store is idempotent and publishes no data — the only payload
/// is the flag itself — and a stale load merely delays the stop by one
/// phase. The engine's own join edges order everything else.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, RELAXED);
    }

    /// True once any clone of this token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(RELAXED)
    }
}

/// A packed `(score, vertex)` proposal key with a total order: primary on
/// score, secondary on vertex id. Packing both into one `u64` would lose
/// `f64` precision, so the key spans two words conceptually but we only need
/// the *edge index* to recover everything; see `pcd-matching` for use.
///
/// Here we provide the simpler 64-bit packing used by the *old* edge-sweep
/// matching baseline: a 32-bit monotone score approximation and the partner
/// id. The new matching keeps exact `f64` scores in a side array and CASes
/// edge indices instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedBest(pub u64);

impl PackedBest {
    /// The "no proposal yet" register value.
    pub const EMPTY: PackedBest = PackedBest(0);

    /// Packs a score and partner. The score is squashed to a monotone `f32`;
    /// ties broken by partner id (higher id wins, matching the paper's
    /// "score then vertex indices" total order arbitrarily oriented).
    ///
    /// The score must be strictly positive: the sign-flip encoding maps
    /// *negative* scores to keys greater than [`PackedBest::EMPTY`] (0),
    /// so a non-positive proposal would beat an empty register and could
    /// match a pair the scorer rejected. Matching only proposes positive
    /// scores; debug builds enforce it here.
    #[inline]
    pub fn new(score: f64, partner: u32) -> Self {
        debug_assert!(
            score > 0.0,
            "PackedBest requires a strictly positive score, got {score}"
        );
        let s = score as f32; // monotone squash
        let bits = s.to_bits();
        let key = if bits >> 31 == 0 {
            bits | (1 << 31)
        } else {
            !bits
        };
        PackedBest(((key as u64) << 32) | partner as u64)
    }

    #[inline]
    /// The packed partner id.
    pub fn partner(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    #[inline]
    /// True if no proposal has been packed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn ord_f64_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.5,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(ord_f64(w[0]) <= ord_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(ord_f64(-0.0) < ord_f64(0.0));
    }

    #[test]
    fn ord_f64_roundtrips() {
        for &x in &[-123.75, -0.0, 0.0, 0.5, 42.0, f64::INFINITY] {
            let y = unord_f64(ord_f64(x));
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fetch_max_keeps_largest() {
        let c = AtomicU64::new(5);
        assert_eq!(fetch_max_u64(&c, 3), 5);
        assert_eq!(c.load(RELAXED), 5);
        assert_eq!(fetch_max_u64(&c, 9), 5);
        assert_eq!(c.load(RELAXED), 9);
    }

    #[test]
    fn cas_improve_installs_only_improvements() {
        let c = AtomicU64::new(10);
        assert!(!cas_improve_u64(&c, 7, |cur| 7 > cur));
        assert_eq!(c.load(RELAXED), 10);
        assert!(cas_improve_u64(&c, 42, |cur| 42 > cur));
        assert_eq!(c.load(RELAXED), 42);
    }

    #[test]
    fn cas_improve_parallel_is_max() {
        let c = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 1..=8u64 {
                let c = &c;
                s.spawn(move || {
                    for k in 0..1000u64 {
                        let v = t * 1000 + k;
                        cas_improve_u64(c, v, |cur| v > cur);
                    }
                });
            }
        });
        assert_eq!(c.load(RELAXED), 8999);
    }

    #[test]
    fn fetch_add_f64_accumulates() {
        let c = AtomicU64::new(0f64.to_bits());
        fetch_add_f64(&c, 1.5);
        fetch_add_f64(&c, 2.25);
        assert_eq!(f64::from_bits(c.load(RELAXED)), 3.75);
    }

    #[test]
    fn fetch_add_f64_parallel_sum() {
        let c = AtomicU64::new(0f64.to_bits());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..125 {
                        fetch_add_f64(c, 0.25);
                    }
                });
            }
        });
        assert_eq!(f64::from_bits(c.load(RELAXED)), 250.0);
    }

    #[test]
    fn packed_best_orders_by_score_then_partner() {
        let a = PackedBest::new(1.0, 7);
        let b = PackedBest::new(2.0, 3);
        assert!(b.0 > a.0);
        let c = PackedBest::new(1.0, 9);
        assert!(c.0 > a.0); // tie on score -> higher partner wins
        assert_eq!(c.partner(), 9);
        assert!(PackedBest::EMPTY.is_empty());
    }

    #[test]
    fn packed_best_positive_scores_beat_empty() {
        // Regression for the sign-flip footgun: every *positive* score must
        // produce a key strictly above EMPTY, down to the smallest
        // subnormal, so a real proposal always wins an empty register.
        for &s in &[f64::MIN_POSITIVE, 1e-300, 0.5, 1.0, 1e300] {
            assert!(
                PackedBest::new(s, 1).0 > PackedBest::EMPTY.0,
                "score {s} must beat EMPTY"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive score")]
    #[cfg(debug_assertions)]
    fn packed_best_rejects_non_positive_scores() {
        // A non-positive score would encode to a key above EMPTY (the
        // sign-flip maps negatives high), letting a rejected proposal win
        // a register; debug builds refuse to construct one.
        let _ = PackedBest::new(-1.0, 1);
    }

    #[test]
    fn cancel_token_clones_share_one_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn cancel_token_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }

    #[test]
    fn as_atomic_views_alias_storage() {
        let mut v = vec![0u64; 4];
        {
            let a = as_atomic_u64(&mut v);
            a[2].store(99, RELAXED);
        }
        assert_eq!(v[2], 99);
        let mut w = vec![0u32; 4];
        {
            let a = as_atomic_u32(&mut w);
            a[1].store(7, RELAXED);
        }
        assert_eq!(w[1], 7);
        let mut u = vec![0usize; 4];
        {
            let a = as_atomic_usize(&mut u);
            a[3].fetch_add(11, RELAXED);
        }
        assert_eq!(u[3], 11);
    }
}
