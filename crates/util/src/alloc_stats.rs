//! Counting global allocator for the allocation-regression harness
//! (`--features alloc-stats`).
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation, deallocation, and live byte. Test and bench binaries
//! install it:
//!
//! ```ignore
//! use pcd_util::alloc_stats::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//! ```
//!
//! then bracket a region with [`snapshot`] and diff the counters. The
//! zero-allocation level-loop test asserts that steady-state levels of the
//! driver (after the level-1 warm-up sizes every arena) perform **zero**
//! heap allocations in score, match, and contract.
//!
//! Counters are process-global and relaxed-atomic: cross-thread counts are
//! exact in total, but a snapshot taken while other threads allocate is
//! only approximately ordered. The regression test runs single-threaded.

use crate::sync::{AtomicU64, RELAXED};
use std::alloc::{GlobalAlloc, Layout, System};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

fn record_alloc(size: usize) {
    // ORDERING: RELAXED — statistics counters on the global-allocator
    // path: atomicity only, no synchronization rides on them, and any
    // stronger ordering would tax every allocation in the process.
    ALLOCATIONS.fetch_add(1, RELAXED);
    BYTES_ALLOCATED.fetch_add(size as u64, RELAXED);
    let live = LIVE_BYTES.fetch_add(size as u64, RELAXED) + size as u64;
    // Racy max is fine: the peak only ever under-reports by a transient
    // window, and the regression test is single-threaded.
    PEAK_LIVE_BYTES.fetch_max(live, RELAXED);
}

fn record_dealloc(size: usize) {
    // ORDERING: RELAXED — same statistics-counter argument as
    // record_alloc above.
    DEALLOCATIONS.fetch_add(1, RELAXED);
    LIVE_BYTES.fetch_sub(size as u64, RELAXED);
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts traffic.
/// Zero-sized; install as the binary's `#[global_allocator]`.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System`, which upholds the
// `GlobalAlloc` contract; the counters never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds `alloc`'s contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds `dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds `realloc`'s contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // One traffic event: retire the old block, charge the new.
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocation events since process start (reallocs count once).
    pub allocations: u64,
    /// Deallocation events since process start.
    pub deallocations: u64,
    /// Total bytes ever requested.
    pub bytes_allocated: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_live_bytes: u64,
}

/// Reads the counters. All zeros unless the running binary installed
/// [`CountingAlloc`] as its global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        // ORDERING: RELAXED — the snapshot is advisory; fields are read
        // independently and callers quiesce the system (or accept a
        // transient view) before comparing snapshots.
        allocations: ALLOCATIONS.load(RELAXED),
        deallocations: DEALLOCATIONS.load(RELAXED),
        bytes_allocated: BYTES_ALLOCATED.load(RELAXED),
        live_bytes: LIVE_BYTES.load(RELAXED),
        peak_live_bytes: PEAK_LIVE_BYTES.load(RELAXED),
    }
}

impl AllocSnapshot {
    /// Allocation events between `earlier` and `self`.
    pub fn allocations_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocations - earlier.allocations
    }

    /// Bytes requested between `earlier` and `self`.
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.bytes_allocated - earlier.bytes_allocated
    }
}
