//! Counting/radix-sort contraction — the profile-driven rewrite of the
//! bucket kernel's hot path (DESIGN.md §15).
//!
//! The pipeline shares the bucket kernel's shape — relabel, histogram,
//! scatter, per-row accumulate, compact — but replaces the two spots the
//! profile blames:
//!
//! * **Placement** is always the deterministic exclusive prefix sum over
//!   new-source degrees (never the racy global fetch-and-add), and the
//!   scatter walks the edge array in fixed cache-sized blocks so each
//!   task's reads of `new_src`/`new_dst`/`weights` stay streaming.
//! * **Per-row accumulation** of parallel edges uses a stable LSD
//!   counting sort over 8-bit digits of the destination id (ping-ponging
//!   between the row's slice of the scatter arena and its slice of a
//!   dedicated radix arena) instead of the comparison heapsort, then a
//!   single linear merge of equal destinations. Rows at or below the
//!   tandem insertion cutoff fall back to the bucket kernel's
//!   insertion-sort path — a counting pass cannot beat it there.
//!
//! Output is **bit-identical** to [`bucket::contract_into`] with
//! [`Placement::PrefixSum`] for any thread count: rows land at the same
//! prefix-sum offsets in ascending new-source order, destinations within a
//! row ascend, and duplicate weights merge by exact integer addition
//! (order-independent). `tests/dispatch_parity.rs` holds this to zero bits
//! across the matcher/scorer cross-product.
//!
//! [`contract_map_into`] generalises the same pipeline from a matching to
//! an arbitrary old→new vertex map (many-to-one, not just pair merges) —
//! the engine's vertex-following pre-pass contracts whole hair bundles
//! through it in one shot.

use crate::bucket::{self, sort_accumulate, ContractScratch, Placement};
use crate::{relabel_into, Contraction};
use pcd_graph::{canonical_order, Graph, GraphParts};
use pcd_matching::Matching;
use pcd_util::scan::exclusive_prefix_sum;
use pcd_util::sync::{as_atomic_u32, as_atomic_u64, as_atomic_usize, SendPtr, RELAXED};
use pcd_util::VertexId;

use rayon::prelude::*;

/// Below this many parent edges the whole contraction delegates to
/// [`bucket::contract_into`] (prefix-sum placement): the outputs are
/// bit-identical, and at this scale the bucket kernel's smaller constant
/// factors win over the radix arena bookkeeping.
pub const RADIX_FALLBACK_EDGES: usize = 1 << 12;

/// Rows at or below this length use the bucket kernel's tandem insertion
/// sort; longer rows take the LSD counting passes. Matches the bucket
/// kernel's insertion cutoff so the radix kernel never runs a heapsort.
pub const RADIX_ROW_CUTOFF: usize = 24;

/// Edge-block length for the cache-blocked scatter: each task claims one
/// contiguous block of the relabelled edge arrays, so its reads stream
/// and only the per-bucket cursor bumps go through shared cache lines.
const SCATTER_BLOCK: usize = 1 << 12;

/// Contracts `g` along matching `m` — owning convenience wrapper over
/// [`contract_into`] for ablations, oracles, and one-shot callers.
pub fn contract(g: &Graph, m: &Matching) -> Contraction {
    let mut scratch = ContractScratch::new();
    let (graph, num_new) = contract_into(g, m, &mut scratch, GraphParts::default());
    Contraction {
        graph,
        new_of_old: scratch.take_new_of_old(),
        num_new,
    }
}

/// Contracts `g` along matching `m` with the radix pipeline, scattering
/// into recycled storage. Same contract as [`bucket::contract_into`]: the
/// old→new map is left in `scratch`, the returned graph is bit-identical
/// to the bucket kernel's for any thread count.
pub fn contract_into(
    g: &Graph,
    m: &Matching,
    scratch: &mut ContractScratch,
    parts: GraphParts,
) -> (Graph, usize) {
    if g.num_edges() < RADIX_FALLBACK_EDGES {
        return bucket::contract_into(g, m, Placement::PrefixSum, scratch, parts);
    }
    let ContractScratch {
        is_leader,
        new_of_old,
        matched_bits,
        new_src,
        new_dst,
        counts,
        bucket_off,
        cursor,
        tmp_dst,
        tmp_w,
        radix_dst,
        radix_w,
        uniq,
        final_off,
    } = scratch;

    let num_new = relabel_into(g, m, is_leader, new_of_old);
    let mut parts = parts;
    crate::contracted_self_loops_into(g, m, new_of_old, num_new, &mut parts.self_loop);

    // Phase 1 (matched variant): relabel + re-canonicalise; matched edges
    // were already folded by `contracted_self_loops_into`, so only
    // *unmatched* coinciding edges fold here. Identical to the bucket
    // kernel's phase 1.
    let ne = g.num_edges();
    matched_bits.clear();
    matched_bits.resize(ne.div_ceil(64), 0);
    for &e in m.matched_edges() {
        matched_bits[e >> 6] |= 1 << (e & 63);
    }
    relabel_edges(
        g,
        new_of_old,
        Some(matched_bits.as_slice()),
        new_src,
        new_dst,
        &mut parts.self_loop,
    );

    let graph = contract_relabelled(
        g, num_new, new_src, new_dst, counts, bucket_off, cursor, tmp_dst, tmp_w, radix_dst,
        radix_w, uniq, final_off, parts,
    );
    (graph, num_new)
}

/// Contracts `g` through an arbitrary old→new vertex map: every old vertex
/// maps somewhere in `[0, num_new)`, and any number of old vertices may
/// share a new id (unlike a matching's pair merges). Edges whose endpoints
/// coincide under the map fold into the new vertex's self-loop, as do all
/// old self-loops. Returns the contracted graph; `new_of_old` is the
/// caller's (it is *not* deposited in `scratch`).
///
/// This is the vertex-following pre-pass's workhorse: a whole star of
/// degree-1 hair contracts into its center in one call.
pub fn contract_map_into(
    g: &Graph,
    new_of_old: &[VertexId],
    num_new: usize,
    scratch: &mut ContractScratch,
    parts: GraphParts,
) -> Graph {
    assert_eq!(new_of_old.len(), g.num_vertices());
    let ContractScratch {
        new_src,
        new_dst,
        counts,
        bucket_off,
        cursor,
        tmp_dst,
        tmp_w,
        radix_dst,
        radix_w,
        uniq,
        final_off,
        ..
    } = scratch;

    let mut parts = parts;
    // Old self-loops fold through the map; coinciding edges fold in the
    // relabel pass below (there is no pre-folded matched edge here).
    parts.self_loop.clear();
    parts.self_loop.resize(num_new, 0);
    {
        let cells = as_atomic_u64(&mut parts.self_loop);
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let s = g.self_loop(v as u32);
            if s > 0 {
                // ORDERING: RELAXED — pure weight accumulation (atomicity
                // only); the join barrier publishes the totals.
                cells[new_of_old[v] as usize].fetch_add(s, RELAXED);
            }
        });
    }
    relabel_edges(g, new_of_old, None, new_src, new_dst, &mut parts.self_loop);

    contract_relabelled(
        g, num_new, new_src, new_dst, counts, bucket_off, cursor, tmp_dst, tmp_w, radix_dst,
        radix_w, uniq, final_off, parts,
    )
}

/// Phase 1: maps every edge's endpoints through `new_of_old` and
/// re-canonicalises under the parity hash. Coinciding endpoints mark the
/// edge dead (`NO_VERTEX` in `new_src`) and fold its weight into the new
/// vertex's self-loop — except edges flagged in `matched_bits`, whose
/// weight the caller already folded.
fn relabel_edges(
    g: &Graph,
    new_of_old: &[VertexId],
    matched_bits: Option<&[u64]>,
    new_src: &mut Vec<u32>,
    new_dst: &mut Vec<u32>,
    self_loop: &mut [u64],
) {
    let ne = g.num_edges();
    new_src.clear();
    new_src.resize(ne, 0);
    new_dst.clear();
    new_dst.resize(ne, 0);
    let src_c = as_atomic_u32(new_src);
    let dst_c = as_atomic_u32(new_dst);
    let self_c = as_atomic_u64(self_loop);
    (0..ne).into_par_iter().for_each(|e| {
        // ORDERING: RELAXED — slot `e` has exactly one writer (the
        // self-loop fetch_add is the only cross-task accumulation and
        // needs atomicity only); the join barrier publishes everything to
        // the sequential reads that follow.
        let (i, j, w) = g.edge(e);
        let (ni, nj) = (new_of_old[i as usize], new_of_old[j as usize]);
        if ni == nj {
            let already_folded = matched_bits
                .map(|bits| bits[e >> 6] >> (e & 63) & 1 == 1)
                .unwrap_or(false);
            if !already_folded {
                self_c[ni as usize].fetch_add(w, RELAXED);
            }
            src_c[e].store(pcd_util::NO_VERTEX, RELAXED);
        } else {
            let (a, b) = canonical_order(ni, nj);
            src_c[e].store(a, RELAXED);
            dst_c[e].store(b, RELAXED);
        }
    });
}

/// Phases 2–4 over already-relabelled endpoints: histogram new-source
/// degrees, exclusive prefix-sum into row offsets, cache-blocked scatter,
/// per-row radix/counting accumulation, and compaction into dense final
/// storage. `parts.self_loop` must already hold the folded self-loops.
#[allow(clippy::too_many_arguments)]
fn contract_relabelled(
    g: &Graph,
    num_new: usize,
    new_src: &[u32],
    new_dst: &[u32],
    counts: &mut Vec<usize>,
    bucket_off: &mut Vec<usize>,
    cursor: &mut Vec<usize>,
    tmp_dst: &mut Vec<u32>,
    tmp_w: &mut Vec<u64>,
    radix_dst: &mut Vec<u32>,
    radix_w: &mut Vec<u64>,
    uniq: &mut Vec<usize>,
    final_off: &mut Vec<usize>,
    mut parts: GraphParts,
) -> Graph {
    let ne = g.num_edges();

    // Phase 2: histogram new-source degrees.
    counts.clear();
    counts.resize(num_new, 0);
    {
        let cells = as_atomic_usize(counts);
        (0..ne).into_par_iter().for_each(|e| {
            let s = new_src[e];
            if s != pcd_util::NO_VERTEX {
                // ORDERING: RELAXED — pure counter increment; the join
                // barrier publishes the totals.
                cells[s as usize].fetch_add(1, RELAXED);
            }
        });
    }
    let counts: &[usize] = counts;
    let live: usize = counts.iter().sum();

    // Exclusive prefix sum gives every row a fixed, schedule-independent
    // offset — the fetch-and-add placement the paper shrugs at is strictly
    // worse here: it costs the same pass and surrenders determinism.
    bucket_off.clear();
    // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
    bucket_off.extend_from_slice(counts);
    exclusive_prefix_sum(bucket_off);
    let bucket_off: &[usize] = bucket_off;

    // Phase 2b: cache-blocked scatter. Each task owns one contiguous
    // block of the edge arrays, so reads stream; within-row order is
    // schedule-dependent (per-row cursors race), which the per-row sort
    // below erases.
    cursor.clear();
    // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
    cursor.extend_from_slice(bucket_off);
    tmp_dst.clear();
    tmp_dst.resize(live, 0);
    tmp_w.clear();
    tmp_w.resize(live, 0);
    {
        let cur = as_atomic_usize(cursor);
        let dst_c = as_atomic_u32(tmp_dst);
        let w_c = as_atomic_u64(tmp_w);
        let weights = g.weights();
        new_src
            .par_chunks(SCATTER_BLOCK)
            .enumerate()
            .for_each(|(blk, block)| {
                let base = blk * SCATTER_BLOCK;
                for (k, &s) in block.iter().enumerate() {
                    if s != pcd_util::NO_VERTEX {
                        let e = base + k;
                        // ORDERING: RELAXED — fetch_add hands each edge a
                        // distinct `pos`, so the stores have one writer per
                        // slot; the join barrier publishes them to the
                        // per-row sort that follows.
                        let pos = cur[s as usize].fetch_add(1, RELAXED);
                        dst_c[pos].store(new_dst[e], RELAXED);
                        w_c[pos].store(weights[e], RELAXED);
                    }
                }
            });
    }

    // Phase 3: per-row accumulate. Short rows take the tandem insertion
    // path; long rows take stable LSD counting passes over the digits a
    // destination id can actually occupy, ping-ponging between the row's
    // slice of the scatter arena and its slice of the radix arena.
    radix_dst.clear();
    radix_dst.resize(live, 0);
    radix_w.clear();
    radix_w.resize(live, 0);
    let digits = digits_for(num_new);
    uniq.clear();
    uniq.resize(num_new, 0);
    {
        let dst_ptr = SendPtr(tmp_dst.as_mut_ptr());
        let w_ptr = SendPtr(tmp_w.as_mut_ptr());
        let alt_dst_ptr = SendPtr(radix_dst.as_mut_ptr());
        let alt_w_ptr = SendPtr(radix_w.as_mut_ptr());
        uniq.par_iter_mut().enumerate().for_each(|(v, u)| {
            let (b, len) = (bucket_off[v], counts[v]);
            if len == 0 {
                return;
            }
            let (dst_ptr, w_ptr) = (&dst_ptr, &w_ptr);
            let (alt_dst_ptr, alt_w_ptr) = (&alt_dst_ptr, &alt_w_ptr);
            // SAFETY: `bucket_off` is the exclusive prefix sum of
            // `counts`, so each row's range `[b, b + len)` is disjoint
            // from every other task's and in-bounds for all four arenas
            // (each sized `live`); the arenas are exclusively borrowed
            // for the duration of the parallel region.
            unsafe {
                let d = std::slice::from_raw_parts_mut(dst_ptr.0.add(b), len);
                let w = std::slice::from_raw_parts_mut(w_ptr.0.add(b), len);
                *u = if len <= RADIX_ROW_CUTOFF {
                    sort_accumulate(d, w)
                } else {
                    let alt_d = std::slice::from_raw_parts_mut(alt_dst_ptr.0.add(b), len);
                    let alt_w = std::slice::from_raw_parts_mut(alt_w_ptr.0.add(b), len);
                    radix_accumulate(d, w, alt_d, alt_w, digits)
                };
            }
        });
    }
    let uniq: &[usize] = uniq;
    let tmp_dst: &[u32] = tmp_dst;
    let tmp_w: &[u64] = tmp_w;

    // Phase 4: compact shortened rows into dense final storage — identical
    // to the bucket kernel's compaction, byte for byte.
    final_off.clear();
    // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
    final_off.extend_from_slice(uniq);
    let total = exclusive_prefix_sum(final_off);
    let final_off: &[usize] = final_off;
    parts.src.clear();
    parts.src.resize(total, 0);
    parts.dst.clear();
    parts.dst.resize(total, 0);
    parts.weight.clear();
    parts.weight.resize(total, 0);
    {
        let src_c = as_atomic_u32(&mut parts.src);
        let dst_c = as_atomic_u32(&mut parts.dst);
        let w_c = as_atomic_u64(&mut parts.weight);
        (0..num_new).into_par_iter().for_each(|v| {
            // ORDERING: RELAXED — row v's extent [to, to+uniq[v]) is
            // disjoint per task, so each slot has one writer; the join
            // barrier publishes the compacted arrays to the builder below.
            let from = bucket_off[v];
            let to = final_off[v];
            for k in 0..uniq[v] {
                src_c[to + k].store(v as u32, RELAXED);
                dst_c[to + k].store(tmp_dst[from + k], RELAXED);
                w_c[to + k].store(tmp_w[from + k], RELAXED);
            }
        });
    }
    parts.bucket_begin.clear();
    // analyze: allow(alloc, reason = "fill of recycled GraphParts buffers; ping-pong recycling amortizes capacity")
    parts.bucket_begin.extend_from_slice(final_off);
    parts.bucket_end.clear();
    parts
        .bucket_end
        // analyze: allow(alloc, reason = "fill of recycled GraphParts buffers; ping-pong recycling amortizes capacity")
        .extend((0..num_new).map(|v| final_off[v] + uniq[v]));

    // Contraction conserves Σw + Σself exactly, so the parent's total
    // carries over; debug builds re-verify inside `from_recycled_parts`.
    Graph::from_recycled_parts(num_new, parts, g.total_weight())
}

/// How many 8-bit digits a destination id below `num_new` can occupy.
fn digits_for(num_new: usize) -> u32 {
    let bits = usize::BITS - num_new.saturating_sub(1).leading_zeros();
    bits.div_ceil(8).max(1)
}

/// Sorts one row ascending by destination with a stable LSD counting sort
/// over 8-bit digits (skipping passes where every key shares the digit),
/// then merges duplicate destinations in place; returns the shortened
/// length. The histograms live on the stack — no allocation.
fn radix_accumulate(
    dst: &mut [u32],
    w: &mut [u64],
    alt_dst: &mut [u32],
    alt_w: &mut [u64],
    digits: u32,
) -> usize {
    let len = dst.len();
    debug_assert!(len > 0 && alt_dst.len() == len && alt_w.len() == len);
    let mut in_main = true;
    for pass in 0..digits {
        let shift = pass * 8;
        let (from_d, from_w, to_d, to_w): (&[u32], &[u64], &mut [u32], &mut [u64]) = if in_main {
            (&*dst, &*w, &mut *alt_dst, &mut *alt_w)
        } else {
            (&*alt_dst, &*alt_w, &mut *dst, &mut *w)
        };
        let mut hist = [0u32; 256];
        for &d in from_d.iter() {
            hist[(d >> shift) as usize & 0xff] += 1;
        }
        if hist.iter().any(|&c| c as usize == len) {
            // Every key shares this digit: the pass is the identity.
            continue;
        }
        let mut sum = 0u32;
        for h in hist.iter_mut() {
            let c = *h;
            *h = sum;
            sum += c;
        }
        for k in 0..len {
            let d = from_d[k];
            let slot = &mut hist[(d >> shift) as usize & 0xff];
            let at = *slot as usize;
            *slot += 1;
            to_d[at] = d;
            to_w[at] = from_w[k];
        }
        in_main = !in_main;
    }
    if !in_main {
        dst.copy_from_slice(alt_dst);
        w.copy_from_slice(alt_w);
    }
    // Linear merge of equal destinations (already adjacent and ascending).
    let mut out = 0usize;
    let mut k = 0usize;
    while k < len {
        let d = dst[k];
        let mut acc = w[k];
        k += 1;
        while k < len && dst[k] == d {
            acc += w[k];
            k += 1;
        }
        dst[out] = d;
        w[out] = acc;
        out += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_fingerprint;
    use pcd_matching::seq::match_sequential_greedy;

    fn weighted_matching(g: &Graph) -> Matching {
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        match_sequential_greedy(g, &s)
    }

    #[test]
    fn digits_for_covers_ranges() {
        assert_eq!(digits_for(0), 1);
        assert_eq!(digits_for(1), 1);
        assert_eq!(digits_for(256), 1);
        assert_eq!(digits_for(257), 2);
        assert_eq!(digits_for(1 << 16), 2);
        assert_eq!(digits_for((1 << 16) + 1), 3);
        assert_eq!(digits_for(1 << 24), 3);
        assert_eq!(digits_for((1 << 24) + 1), 4);
    }

    #[test]
    fn radix_accumulate_matches_sort_accumulate() {
        let mut rng = 0x243F6A8885A308D3u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for len in [25usize, 64, 300, 1000] {
            for &bound in &[7u32, 200, 70_000, 20_000_000] {
                let dst: Vec<u32> = (0..len).map(|_| (next() as u32) % bound).collect();
                let w: Vec<u64> = (0..len).map(|_| next() % 100 + 1).collect();
                let (mut d1, mut w1) = (dst.clone(), w.clone());
                let n1 = sort_accumulate(&mut d1, &mut w1);
                let (mut d2, mut w2) = (dst.clone(), w.clone());
                let mut alt_d = vec![0u32; len];
                let mut alt_w = vec![0u64; len];
                let n2 = radix_accumulate(
                    &mut d2,
                    &mut w2,
                    &mut alt_d,
                    &mut alt_w,
                    digits_for(bound as usize),
                );
                assert_eq!(n1, n2, "len {len} bound {bound}");
                assert_eq!(&d1[..n1], &d2[..n2], "len {len} bound {bound}");
                assert_eq!(&w1[..n1], &w2[..n2], "len {len} bound {bound}");
            }
        }
    }

    #[test]
    fn bit_identical_to_bucket_prefix_sum_on_rmat() {
        // Above the fallback cutoff so the radix pipeline actually runs.
        let p = pcd_gen::RmatParams::paper(12, 17);
        let g = pcd_gen::rmat_graph(&p);
        assert!(g.num_edges() >= RADIX_FALLBACK_EDGES);
        let m = weighted_matching(&g);
        let a = bucket::contract_with_policy(&g, &m, Placement::PrefixSum);
        let b = contract(&g, &m);
        assert_eq!(a.num_new, b.num_new);
        assert_eq!(a.new_of_old, b.new_of_old);
        assert_eq!(a.graph.srcs(), b.graph.srcs());
        assert_eq!(a.graph.dsts(), b.graph.dsts());
        assert_eq!(a.graph.weights(), b.graph.weights());
        assert_eq!(a.graph.self_loops(), b.graph.self_loops());
        assert_eq!(b.graph.validate(), Ok(()));
    }

    #[test]
    fn small_graphs_delegate_and_agree() {
        let g = pcd_gen::classic::clique_ring(4, 5);
        let m = weighted_matching(&g);
        let a = bucket::contract(&g, &m);
        let b = contract(&g, &m);
        assert_eq!(edge_fingerprint(&a.graph), edge_fingerprint(&b.graph));
        assert_eq!(a.new_of_old, b.new_of_old);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = pcd_gen::RmatParams::paper(12, 23);
        let g = pcd_gen::rmat_graph(&p);
        let m = weighted_matching(&g);
        let c1 = pcd_util::pool::with_threads(1, || contract(&g, &m));
        let c4 = pcd_util::pool::with_threads(4, || contract(&g, &m));
        assert_eq!(c1.graph.srcs(), c4.graph.srcs());
        assert_eq!(c1.graph.dsts(), c4.graph.dsts());
        assert_eq!(c1.graph.weights(), c4.graph.weights());
        assert_eq!(c1.new_of_old, c4.new_of_old);
    }

    #[test]
    fn contract_map_star_collapses_to_center() {
        // Star: center 0, leaves 1..=5, every leaf following the center.
        let mut b = pcd_graph::GraphBuilder::new(6);
        for leaf in 1..6u32 {
            b = b.add_edge(0, leaf, leaf as u64);
        }
        let g = b.build();
        let map = vec![0u32; 6];
        let mut scratch = ContractScratch::new();
        let pruned = contract_map_into(&g, &map, 1, &mut scratch, GraphParts::default());
        assert_eq!(pruned.num_vertices(), 1);
        assert_eq!(pruned.num_edges(), 0);
        assert_eq!(pruned.self_loop(0), 1 + 2 + 3 + 4 + 5);
        assert_eq!(pruned.total_weight(), g.total_weight());
        assert_eq!(pruned.validate(), Ok(()));
    }

    #[test]
    fn contract_map_identity_is_isomorphic_copy() {
        let g = pcd_gen::classic::clique_ring(3, 4);
        let map: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut scratch = ContractScratch::new();
        let c = contract_map_into(
            &g,
            &map,
            g.num_vertices(),
            &mut scratch,
            GraphParts::default(),
        );
        assert_eq!(edge_fingerprint(&c), edge_fingerprint(&g));
        assert_eq!(c.self_loops(), g.self_loops());
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn contract_map_matches_matching_contraction() {
        // Feeding a matching's relabel map through the generic path must
        // reproduce the matching-based contraction exactly.
        let p = pcd_gen::RmatParams::paper(11, 29);
        let g = pcd_gen::rmat_graph(&p);
        let m = weighted_matching(&g);
        let (map, num_new) = crate::relabel_from_matching(&g, &m);
        let via_matching = contract(&g, &m);
        let mut scratch = ContractScratch::new();
        let via_map = contract_map_into(&g, &map, num_new, &mut scratch, GraphParts::default());
        assert_eq!(via_matching.graph.srcs(), via_map.srcs());
        assert_eq!(via_matching.graph.dsts(), via_map.dsts());
        assert_eq!(via_matching.graph.weights(), via_map.weights());
        assert_eq!(via_matching.graph.self_loops(), via_map.self_loops());
    }
}
