//! Sequential hash-map contraction — the differential-test oracle.

use crate::{relabel_from_matching, Contraction};
use pcd_graph::{builder, Graph};
use pcd_matching::Matching;
use pcd_util::{VertexId, Weight};
use std::collections::HashMap;

/// Contracts `g` along `m` with a single-threaded hash map. Simple enough
/// to be obviously correct; used to validate the parallel kernels.
pub fn contract_seq(g: &Graph, m: &Matching) -> Contraction {
    let (new_of_old, num_new) = relabel_from_matching(g, m);

    let mut self_loop: Vec<Weight> = vec![0; num_new];
    for v in 0..g.num_vertices() {
        self_loop[new_of_old[v] as usize] += g.self_loop(v as u32);
    }

    let mut acc: HashMap<(VertexId, VertexId), Weight> = HashMap::new();
    for (i, j, w) in g.edges() {
        let (ni, nj) = (new_of_old[i as usize], new_of_old[j as usize]);
        if ni == nj {
            self_loop[ni as usize] += w;
        } else {
            let key = (ni.min(nj), ni.max(nj));
            *acc.entry(key).or_insert(0) += w;
        }
    }

    let mut edges: Vec<(VertexId, VertexId, Weight)> =
        acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    edges.extend(
        self_loop
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(v, &w)| (v as u32, v as u32, w)),
    );

    Contraction {
        graph: builder::from_edges(num_new, edges),
        new_of_old,
        num_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bucket::contract, edge_fingerprint};
    use pcd_matching::seq::match_sequential_greedy;

    #[test]
    fn oracle_matches_bucket_contraction() {
        for seed in 0..4u64 {
            let p = pcd_gen::RmatParams::paper(8, seed);
            let g = pcd_gen::rmat_graph(&p);
            let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
            let m = match_sequential_greedy(&g, &s);
            let a = contract(&g, &m);
            let b = contract_seq(&g, &m);
            assert_eq!(a.num_new, b.num_new);
            assert_eq!(edge_fingerprint(&a.graph), edge_fingerprint(&b.graph));
            assert_eq!(a.graph.self_loops(), b.graph.self_loops());
            assert_eq!(a.new_of_old, b.new_of_old);
        }
    }

    #[test]
    fn two_cliques_contract_toward_two_vertices() {
        let mut g = pcd_gen::classic::two_cliques(4);
        // Repeated uniform-score contraction must conserve weight at every
        // level and strictly shrink while merges remain.
        let w0 = g.total_weight();
        for _ in 0..5 {
            let s = vec![1.0; g.num_edges()];
            let m = match_sequential_greedy(&g, &s);
            if m.is_empty() {
                break;
            }
            let c = contract_seq(&g, &m);
            assert_eq!(c.graph.total_weight(), w0);
            assert!(c.num_new < g.num_vertices());
            g = c.graph;
        }
        assert!(g.num_vertices() <= 2);
    }
}
