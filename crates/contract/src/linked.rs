//! The 2011 baseline contraction: hash-chain merging.
//!
//! "Our prior implementation used a technique due to John T. Feo where
//! edges are associated to linked lists by a hash of the vertices. …
//! The amount of locking and overhead in iterating over massive,
//! dynamically changing linked lists rendered a similar implementation on
//! Intel-based platforms using OpenMP infeasible."
//!
//! This module reproduces that design honestly for Intel-class hardware:
//! a fixed table of mutex-guarded chains, one lock acquisition and a linear
//! chain walk per relabelled edge. The ablation benchmark compares it
//! against the bucket-sort contraction; expect it to lose badly as
//! contention grows — that gap *is* the paper's point.

use crate::{contracted_self_loops, relabel_from_matching, Contraction};
use parking_lot::Mutex;
use pcd_graph::{canonical_order, Graph};
use pcd_matching::Matching;
use pcd_util::rng::mix64;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::{VertexId, Weight};
use rayon::prelude::*;

/// Contracts `g` along `m` using mutex-guarded hash chains.
pub fn contract_linked(g: &Graph, m: &Matching) -> Contraction {
    let (new_of_old, num_new) = relabel_from_matching(g, m);
    let mut self_loop = contracted_self_loops(g, m, &new_of_old, num_new);

    let ne = g.num_edges();
    let matched: Vec<bool> = {
        let mut v = vec![false; ne];
        for &e in m.matched_edges() {
            v[e] = true;
        }
        v
    };

    // Chain table sized ~|E| as the paper's |E| + |V| extra storage.
    let nbuckets = ne.next_power_of_two().max(64);
    let table: Vec<Mutex<Vec<(VertexId, VertexId, Weight)>>> =
        (0..nbuckets).map(|_| Mutex::new(Vec::new())).collect();

    {
        let self_c = as_atomic_u64(&mut self_loop);
        (0..ne).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            let (ni, nj) = (new_of_old[i as usize], new_of_old[j as usize]);
            if ni == nj {
                if !matched[e] {
                    // ORDERING: RELAXED — self-loop weight accumulation
                    // needs atomicity only; the join barrier publishes it.
                    self_c[ni as usize].fetch_add(w, RELAXED);
                }
                return;
            }
            let (a, b) = canonical_order(ni, nj);
            let h = mix64(((a as u64) << 32) | b as u64) as usize & (nbuckets - 1);
            let mut chain = table[h].lock();
            // Walk the chain; accumulate or append.
            for entry in chain.iter_mut() {
                if entry.0 == a && entry.1 == b {
                    entry.2 += w;
                    return;
                }
            }
            chain.push((a, b, w));
        });
    }

    // Drain chains into a flat edge list (chain order is
    // schedule-dependent, so sort for a deterministic final graph).
    let mut edges: Vec<(VertexId, VertexId, Weight)> = table
        .into_par_iter()
        .flat_map_iter(|m| m.into_inner())
        .collect();
    edges.par_sort_unstable();

    // Assemble buckets: edges are unique already; group by src.
    let srcs: Vec<VertexId> = edges.iter().map(|e| e.0).collect();
    let counts = {
        use pcd_util::sync::AtomicUsize;
        let c: Vec<AtomicUsize> = (0..num_new).map(|_| AtomicUsize::new(0)).collect();
        srcs.par_iter().for_each(|&s| {
            // ORDERING: RELAXED — counter increment, atomicity only; the
            // join barrier orders the into_inner() reads after it.
            c[s as usize].fetch_add(1, RELAXED);
        });
        c.into_iter().map(|x| x.into_inner()).collect::<Vec<_>>()
    };
    let off = pcd_util::scan::offsets_from_counts(&counts);
    // Sorted by (src, dst) already, so runs are contiguous and in offset
    // order; a direct unzip is enough.
    let (src, rest): (Vec<u32>, Vec<(u32, u64)>) =
        edges.into_par_iter().map(|(a, b, w)| (a, (b, w))).unzip();
    let (dst, weight): (Vec<u32>, Vec<u64>) = rest.into_par_iter().unzip();

    let graph = Graph::from_parts(
        num_new,
        src,
        dst,
        weight,
        off[..num_new].to_vec(),
        off[1..=num_new].to_vec(),
        self_loop,
    );
    Contraction {
        graph,
        new_of_old,
        num_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bucket::contract, edge_fingerprint};
    use pcd_matching::seq::match_sequential_greedy;

    #[test]
    fn agrees_with_bucket_contraction() {
        for seed in [2u64, 9, 31] {
            let p = pcd_gen::RmatParams::paper(9, seed);
            let g = pcd_gen::rmat_graph(&p);
            let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
            let m = match_sequential_greedy(&g, &s);
            let a = contract(&g, &m);
            let b = contract_linked(&g, &m);
            assert_eq!(a.num_new, b.num_new, "seed {seed}");
            assert_eq!(edge_fingerprint(&a.graph), edge_fingerprint(&b.graph));
            assert_eq!(a.graph.self_loops(), b.graph.self_loops());
            assert_eq!(b.graph.validate(), Ok(()));
        }
    }

    #[test]
    fn conserves_weight() {
        let g = pcd_gen::classic::clique_ring(5, 6);
        let s = vec![1.0; g.num_edges()];
        let m = match_sequential_greedy(&g, &s);
        let c = contract_linked(&g, &m);
        assert_eq!(c.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let m = pcd_matching::Matching::empty(3);
        let c = contract_linked(&g, &m);
        assert_eq!(c.num_new, 3);
        assert_eq!(c.graph.num_edges(), 0);
    }
}
