#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Community-graph contraction (§IV-C) — the phase the paper says takes
//! "from 40% to 80% of the execution time".
//!
//! Given a matching, every matched pair becomes one new vertex. Edges are
//! relabelled to new ids, re-canonicalised under the parity hash, bucketed
//! by their new stored-first endpoint, sorted and accumulated within each
//! bucket, and emitted as the next community graph. Matched edges (and any
//! edge whose endpoints land in the same new vertex) fold into self-loops.
//!
//! Implementations:
//!
//! * [`bucket`] — the paper's new bucket-sort contraction, with both bucket
//!   placement policies the paper discusses: a racy global fetch-and-add
//!   (no barrier, nondeterministic layout) and a prefix-sum placement
//!   (deterministic layout). The paper "ha\[s\] not timed the difference";
//!   our ablation bench does.
//! * [`radix`] — the profile-driven rewrite of the bucket hot path:
//!   prefix-sum placement, cache-blocked scatter, and stable LSD
//!   counting-sort accumulation of parallel edges, bit-identical to
//!   [`bucket`] with prefix-sum placement (DESIGN.md §15). Also hosts
//!   [`contract_map_into`], the generic map-based contraction the
//!   vertex-following pre-pass uses.
//! * [`linked`] — the 2011 baseline: hash-chain merging in the style of
//!   John T. Feo's full/empty-bit linked lists, rendered honestly on Intel
//!   hardware as mutex-guarded chains ("infeasible" under OpenMP — the
//!   benches quantify how much slower it is).
//! * [`seq`] — a sequential hash-map oracle for differential testing.

pub mod bucket;
pub mod linked;
pub mod radix;
pub mod seq;

pub use bucket::{contract, contract_into, contract_with_policy, ContractScratch, Placement};
pub use radix::contract_map_into;

use pcd_graph::Graph;
use pcd_matching::Matching;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::{VertexId, Weight};
use rayon::prelude::*;

/// Result of contracting a community graph along a matching.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// The contracted community graph over `num_new` vertices.
    pub graph: Graph,
    /// `new_of_old[old] = new` community id; every old vertex maps
    /// somewhere (unmatched vertices survive as singletons).
    pub new_of_old: Vec<VertexId>,
    /// Number of vertices in the contracted graph.
    pub num_new: usize,
}

/// Computes the old→new vertex relabelling induced by a matching: each
/// matched pair collapses onto one id, unmatched vertices keep their own.
/// New ids are assigned in ascending order of the pair's smaller old id
/// (deterministic). Returns `(new_of_old, num_new)`.
pub fn relabel_from_matching(g: &Graph, m: &Matching) -> (Vec<VertexId>, usize) {
    let mut is_leader = Vec::new();
    let mut new_of_old = Vec::new();
    let num_new = relabel_into(g, m, &mut is_leader, &mut new_of_old);
    (new_of_old, num_new)
}

/// As [`relabel_from_matching`], writing into reused buffers (`is_leader`
/// is working storage for the prefix sum; `new_of_old` the result). Both
/// are cleared first and retain capacity. Returns `num_new`.
pub fn relabel_into(
    g: &Graph,
    m: &Matching,
    is_leader: &mut Vec<usize>,
    new_of_old: &mut Vec<VertexId>,
) -> usize {
    let nv = g.num_vertices();
    assert_eq!(m.mates().len(), nv);
    // Leaders: unmatched vertices and the smaller endpoint of each pair.
    is_leader.clear();
    is_leader.resize(nv, 0);
    is_leader.par_iter_mut().enumerate().for_each(|(v, l)| {
        *l = match m.mate(v as u32) {
            Some(p) => (v < p as usize) as usize,
            None => 1,
        };
    });
    let num_new = pcd_util::scan::exclusive_prefix_sum(is_leader);
    new_of_old.clear();
    new_of_old.resize(nv, 0);
    {
        let is_leader: &[usize] = is_leader;
        new_of_old.par_iter_mut().enumerate().for_each(|(v, n)| {
            let leader = match m.mate(v as u32) {
                Some(p) => v.min(p as usize),
                None => v,
            };
            *n = is_leader[leader] as VertexId;
        });
    }
    num_new
}

/// Accumulates the self-loop weights of the contracted graph: each new
/// vertex inherits its members' self-loops plus the weight of the matched
/// edge joining them.
pub fn contracted_self_loops(
    g: &Graph,
    m: &Matching,
    new_of_old: &[VertexId],
    num_new: usize,
) -> Vec<Weight> {
    let mut self_loop = Vec::new();
    contracted_self_loops_into(g, m, new_of_old, num_new, &mut self_loop);
    self_loop
}

/// As [`contracted_self_loops`], writing into a reused buffer (cleared
/// first; capacity is retained).
pub fn contracted_self_loops_into(
    g: &Graph,
    m: &Matching,
    new_of_old: &[VertexId],
    num_new: usize,
    self_loop: &mut Vec<Weight>,
) {
    self_loop.clear();
    self_loop.resize(num_new, 0);
    {
        let cells = as_atomic_u64(self_loop);
        // ORDERING: RELAXED — both loops are pure weight accumulations
        // (atomicity only, no cross-thread publication through the cells);
        // the par_iter join barriers publish the totals to the caller.
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let s = g.self_loop(v as u32);
            if s > 0 {
                cells[new_of_old[v] as usize].fetch_add(s, RELAXED);
            }
        });
        m.matched_edges().par_iter().for_each(|&e| {
            let (i, _, w) = g.edge(e);
            cells[new_of_old[i as usize] as usize].fetch_add(w, RELAXED);
        });
    }
}

/// Canonical multiset of a graph's edges as `(min, max, w)` sorted — a
/// layout-independent fingerprint used to compare contraction
/// implementations.
pub fn edge_fingerprint(g: &Graph) -> Vec<(VertexId, VertexId, Weight)> {
    let mut edges: Vec<_> = g
        .par_edges()
        .map(|(i, j, w)| (i.min(j), i.max(j), w))
        .collect();
    edges.par_sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcd_matching::seq::match_sequential_greedy;

    #[test]
    fn relabel_pairs_and_singletons() {
        // Path 0-1-2-3, match (0,1) and (2,3) by uniform scores.
        let g = pcd_gen::classic::path(4);
        let s = vec![1.0; g.num_edges()];
        let m = match_sequential_greedy(&g, &s);
        let (map, n) = relabel_from_matching(&g, &m);
        assert_eq!(n, 4 - m.len());
        // Pair members share an id; ids are dense.
        for v in 0..4u32 {
            if let Some(p) = m.mate(v) {
                assert_eq!(map[v as usize], map[p as usize]);
            }
            assert!((map[v as usize] as usize) < n);
        }
    }

    #[test]
    fn relabel_empty_matching_is_identity() {
        let g = pcd_gen::classic::ring(5);
        let m = pcd_matching::Matching::empty(5);
        let (map, n) = relabel_from_matching(&g, &m);
        assert_eq!(n, 5);
        assert_eq!(map, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn self_loops_absorb_matched_edge() {
        let g = pcd_graph::GraphBuilder::new(2)
            .add_edge(0, 1, 3)
            .add_self_loop(0, 2)
            .build();
        let s = vec![1.0; g.num_edges()];
        let m = match_sequential_greedy(&g, &s);
        assert_eq!(m.len(), 1);
        let (map, n) = relabel_from_matching(&g, &m);
        let sl = contracted_self_loops(&g, &m, &map, n);
        assert_eq!(n, 1);
        assert_eq!(sl, vec![5]); // 2 (old self) + 3 (matched edge)
    }

    #[test]
    fn fingerprint_is_layout_independent() {
        let a = pcd_graph::GraphBuilder::new(4)
            .add_pairs([(0, 1), (2, 3)])
            .build();
        let b = pcd_graph::GraphBuilder::new(4)
            .add_pairs([(2, 3), (0, 1)])
            .build();
        assert_eq!(edge_fingerprint(&a), edge_fingerprint(&b));
    }
}
