//! The paper's bucket-sort contraction (§IV-C).
//!
//! Pipeline, all phases parallel:
//!
//! 1. **Relabel** every edge's endpoints to new community ids and
//!    re-canonicalise under the parity hash; edges whose endpoints
//!    coincide fold into the new vertex's self-loop.
//! 2. **Bucket** surviving edges by their new stored-first endpoint.
//!    Placement of buckets in the output array follows one of the two
//!    policies the paper describes (see [`Placement`]).
//! 3. **Sort & accumulate** within each bucket by the second endpoint,
//!    merging duplicate edges and shortening the bucket.
//! 4. **Compact** the shortened buckets into dense storage ("copied back
//!    out into the original graph's storage").

use crate::{contracted_self_loops, relabel_from_matching, Contraction};
use pcd_graph::{canonical_order, Graph};
use pcd_matching::Matching;
use pcd_util::scan::offsets_from_counts;
use pcd_util::sync::{as_atomic_u32, as_atomic_u64, AtomicUsize, RELAXED};

use rayon::prelude::*;

/// Bucket placement policy in the scatter phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Deterministic: per-vertex counts + parallel prefix sum give each
    /// bucket a fixed offset; buckets appear in ascending vertex order.
    /// ("Storing the buckets contiguously requires synchronizing on a
    /// prefix sum.")
    PrefixSum,
    /// Paper-faithful racy variant: buckets claim space with one global
    /// fetch-and-add, in whatever order threads arrive. The resulting
    /// layout is schedule-dependent (the *graph* is the same up to edge
    /// order); the paper notes this needs no synchronisation "beyond an
    /// atomic fetch-and-add".
    FetchAdd,
}

/// Contracts `g` along matching `m` with the default deterministic
/// placement.
pub fn contract(g: &Graph, m: &Matching) -> Contraction {
    contract_with_policy(g, m, Placement::PrefixSum)
}

/// Contracts `g` along matching `m` with an explicit placement policy.
pub fn contract_with_policy(g: &Graph, m: &Matching, placement: Placement) -> Contraction {
    let (new_of_old, num_new) = relabel_from_matching(g, m);
    let mut self_loop = contracted_self_loops(g, m, &new_of_old, num_new);

    let ne = g.num_edges();

    // Phase 1: relabel + re-canonicalise. Dead edges (now internal to a new
    // vertex) are marked with NO_VERTEX and their weight folded into the
    // self-loop array. Matched edges were already folded by
    // `contracted_self_loops`, so they are simply marked dead here.
    let matched: Vec<bool> = {
        let mut v = vec![false; ne];
        for &e in m.matched_edges() {
            v[e] = true;
        }
        v
    };
    let mut new_src = vec![0u32; ne];
    let mut new_dst = vec![0u32; ne];
    {
        let src_c = as_atomic_u32(&mut new_src);
        let dst_c = as_atomic_u32(&mut new_dst);
        let self_c = as_atomic_u64(&mut self_loop);
        (0..ne).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            let (ni, nj) = (new_of_old[i as usize], new_of_old[j as usize]);
            if ni == nj {
                // Internal to a merged pair. The matched edge itself was
                // already folded; any other coinciding edge folds here.
                if !matched[e] {
                    self_c[ni as usize].fetch_add(w, RELAXED);
                }
                src_c[e].store(pcd_util::NO_VERTEX, RELAXED);
            } else {
                let (a, b) = canonical_order(ni, nj);
                src_c[e].store(a, RELAXED);
                dst_c[e].store(b, RELAXED);
            }
        });
    }

    // Phase 2: size buckets.
    let counts: Vec<AtomicUsize> = (0..num_new).map(|_| AtomicUsize::new(0)).collect();
    (0..ne).into_par_iter().for_each(|e| {
        let s = new_src[e];
        if s != pcd_util::NO_VERTEX {
            counts[s as usize].fetch_add(1, RELAXED);
        }
    });
    let counts: Vec<usize> = counts.into_iter().map(|c| c.into_inner()).collect();
    let live: usize = counts.iter().sum();

    // Bucket offsets per placement policy.
    let bucket_off: Vec<usize> = match placement {
        Placement::PrefixSum => {
            let off = offsets_from_counts(&counts);
            off[..num_new].to_vec()
        }
        Placement::FetchAdd => {
            // One global cursor; buckets claim their extent on first touch
            // by any thread, in arrival order.
            let cursor = AtomicUsize::new(0);
            let off: Vec<AtomicUsize> =
                (0..num_new).map(|_| AtomicUsize::new(usize::MAX)).collect();
            (0..num_new).into_par_iter().for_each(|v| {
                if counts[v] > 0 {
                    let at = cursor.fetch_add(counts[v], RELAXED);
                    off[v].store(at, RELAXED);
                } else {
                    off[v].store(0, RELAXED);
                }
            });
            off.into_iter().map(|o| o.into_inner()).collect()
        }
    };

    // Phase 2b: scatter into the bucketed temp arrays.
    let cursor: Vec<AtomicUsize> = bucket_off.iter().map(|&o| AtomicUsize::new(o)).collect();
    let mut tmp_dst = vec![0u32; live];
    let mut tmp_w = vec![0u64; live];
    {
        let dst_c = as_atomic_u32(&mut tmp_dst);
        let w_c = as_atomic_u64(&mut tmp_w);
        (0..ne).into_par_iter().for_each(|e| {
            let s = new_src[e];
            if s != pcd_util::NO_VERTEX {
                let pos = cursor[s as usize].fetch_add(1, RELAXED);
                dst_c[pos].store(new_dst[e], RELAXED);
                w_c[pos].store(g.weights()[e], RELAXED);
            }
        });
    }

    // Phase 3: per-bucket sort + accumulate (shortening buckets).
    // Buckets are disjoint ranges of tmp arrays; raw-pointer access is safe.
    let uniq: Vec<usize> = {
        let dst_ptr = SendPtr(tmp_dst.as_mut_ptr());
        let w_ptr = SendPtr(tmp_w.as_mut_ptr());
        (0..num_new)
            .into_par_iter()
            .map(|v| {
                let (b, len) = (bucket_off[v], counts[v]);
                if len == 0 {
                    return 0;
                }
                let (dst_ptr, w_ptr) = (&dst_ptr, &w_ptr);
                // SAFETY: `bucket_off` is the exclusive prefix sum of
                // `counts`, so each vertex's range `[b, b + len)` is
                // disjoint from every other task's and in-bounds for the
                // bucket arrays; the arrays are exclusively borrowed for
                // the duration of the parallel region.
                unsafe {
                    let d = std::slice::from_raw_parts_mut(dst_ptr.0.add(b), len);
                    let w = std::slice::from_raw_parts_mut(w_ptr.0.add(b), len);
                    sort_accumulate(d, w)
                }
            })
            .collect()
    };

    // Phase 4: compact shortened buckets into dense final storage. The
    // final bucket order matches the placement policy's bucket order.
    let final_off = offsets_from_counts(&uniq);
    let total = final_off[num_new];
    let mut src = vec![0u32; total];
    let mut dst = vec![0u32; total];
    let mut weight = vec![0u64; total];
    {
        let src_c = as_atomic_u32(&mut src);
        let dst_c = as_atomic_u32(&mut dst);
        let w_c = as_atomic_u64(&mut weight);
        (0..num_new).into_par_iter().for_each(|v| {
            let from = bucket_off[v];
            let to = final_off[v];
            for k in 0..uniq[v] {
                src_c[to + k].store(v as u32, RELAXED);
                dst_c[to + k].store(tmp_dst[from + k], RELAXED);
                w_c[to + k].store(tmp_w[from + k], RELAXED);
            }
        });
    }
    let bucket_begin = final_off[..num_new].to_vec();
    let bucket_end: Vec<usize> = (0..num_new).map(|v| final_off[v] + uniq[v]).collect();

    let graph = Graph::from_parts(
        num_new,
        src,
        dst,
        weight,
        bucket_begin,
        bucket_end,
        self_loop,
    );
    Contraction {
        graph,
        new_of_old,
        num_new,
    }
}

/// Sorts a bucket by destination and accumulates duplicate destinations in
/// place; returns the number of unique entries (the shortened length).
fn sort_accumulate(dst: &mut [u32], w: &mut [u64]) -> usize {
    let len = dst.len();
    if len == 0 {
        return 0;
    }
    // Sort (dst, w) pairs by dst via a permutation (buckets are small on
    // average; simple and cache-friendly enough).
    let mut perm: Vec<u32> = (0..len as u32).collect();
    perm.sort_unstable_by_key(|&k| dst[k as usize]);
    let sorted_d: Vec<u32> = perm.iter().map(|&k| dst[k as usize]).collect();
    let sorted_w: Vec<u64> = perm.iter().map(|&k| w[k as usize]).collect();
    let mut out = 0usize;
    let mut k = 0usize;
    while k < len {
        let d = sorted_d[k];
        let mut acc = sorted_w[k];
        k += 1;
        while k < len && sorted_d[k] == d {
            acc += sorted_w[k];
            k += 1;
        }
        dst[out] = d;
        w[out] = acc;
        out += 1;
    }
    out
}

struct SendPtr<T>(*mut T);
// SAFETY: shared only inside the bucket-accumulation region, where each
// task dereferences a disjoint bucket range; accesses never alias.
unsafe impl<T> Sync for SendPtr<T> {}
// SAFETY: moving the pointer across threads is fine; every dereference is
// covered by the disjoint-bucket argument above.
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_fingerprint;
    use pcd_matching::seq::match_sequential_greedy;

    fn contract_uniform(g: &Graph) -> Contraction {
        let s = vec![1.0; g.num_edges()];
        let m = match_sequential_greedy(g, &s);
        contract(g, &m)
    }

    #[test]
    fn weight_conserved_on_clique_ring() {
        let g = pcd_gen::classic::clique_ring(4, 4);
        let c = contract_uniform(&g);
        assert_eq!(c.graph.total_weight(), g.total_weight());
        assert_eq!(c.graph.validate(), Ok(()));
        assert!(c.num_new < g.num_vertices());
    }

    #[test]
    fn pair_merge_folds_edge() {
        let g = pcd_graph::GraphBuilder::new(2).add_edge(0, 1, 7).build();
        let c = contract_uniform(&g);
        assert_eq!(c.num_new, 1);
        assert_eq!(c.graph.num_edges(), 0);
        assert_eq!(c.graph.self_loop(0), 7);
    }

    #[test]
    fn parallel_edges_between_pairs_accumulate() {
        // Square 0-1-2-3-0: match (0,1) and (2,3); the two cross edges
        // (1,2) and (3,0) become parallel edges between the two new
        // vertices and must merge into weight 2.
        let g = pcd_graph::GraphBuilder::new(4)
            .add_pairs([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let s: Vec<f64> = (0..g.num_edges())
            .map(|e| {
                let (i, j, _) = g.edge(e);
                let key = (i.min(j), i.max(j));
                if key == (0, 1) || key == (2, 3) {
                    2.0
                } else {
                    1.0
                }
            })
            .collect();
        let m = match_sequential_greedy(&g, &s);
        assert_eq!(m.len(), 2);
        let c = contract(&g, &m);
        assert_eq!(c.num_new, 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.graph.weights(), &[2]);
        assert_eq!(c.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn empty_matching_is_isomorphic_copy() {
        let g = pcd_gen::classic::clique_ring(3, 4);
        let m = pcd_matching::Matching::empty(g.num_vertices());
        let c = contract(&g, &m);
        assert_eq!(c.num_new, g.num_vertices());
        assert_eq!(edge_fingerprint(&c.graph), edge_fingerprint(&g));
        assert_eq!(c.graph.self_loops(), g.self_loops());
    }

    #[test]
    fn fetch_add_placement_same_graph() {
        let p = pcd_gen::RmatParams::paper(9, 17);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = match_sequential_greedy(&g, &s);
        let a = contract_with_policy(&g, &m, Placement::PrefixSum);
        let b = contract_with_policy(&g, &m, Placement::FetchAdd);
        assert_eq!(a.num_new, b.num_new);
        assert_eq!(edge_fingerprint(&a.graph), edge_fingerprint(&b.graph));
        assert_eq!(a.graph.self_loops(), b.graph.self_loops());
        assert_eq!(b.graph.validate(), Ok(()));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = pcd_gen::RmatParams::paper(9, 23);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = match_sequential_greedy(&g, &s);
        let c1 = pcd_util::pool::with_threads(1, || contract(&g, &m));
        let c4 = pcd_util::pool::with_threads(4, || contract(&g, &m));
        assert_eq!(c1.graph.srcs(), c4.graph.srcs());
        assert_eq!(c1.graph.dsts(), c4.graph.dsts());
        assert_eq!(c1.graph.weights(), c4.graph.weights());
        assert_eq!(c1.new_of_old, c4.new_of_old);
    }

    #[test]
    fn rmat_weight_conserved_through_contraction() {
        let p = pcd_gen::RmatParams::paper(10, 5);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = pcd_matching::match_unmatched_list(&g, &s);
        let c = contract(&g, &m);
        assert_eq!(c.graph.total_weight(), g.total_weight());
        assert_eq!(c.graph.validate(), Ok(()));
        assert_eq!(c.num_new, g.num_vertices() - m.len());
    }

    #[test]
    fn sort_accumulate_merges_runs() {
        let mut d = vec![5u32, 3, 5, 3, 9];
        let mut w = vec![1u64, 2, 3, 4, 5];
        let n = sort_accumulate(&mut d, &mut w);
        assert_eq!(n, 3);
        assert_eq!(&d[..n], &[3, 5, 9]);
        assert_eq!(&w[..n], &[6, 4, 5]);
    }
}
