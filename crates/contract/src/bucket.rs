//! The paper's bucket-sort contraction (§IV-C).
//!
//! Pipeline, all phases parallel:
//!
//! 1. **Relabel** every edge's endpoints to new community ids and
//!    re-canonicalise under the parity hash; edges whose endpoints
//!    coincide fold into the new vertex's self-loop.
//! 2. **Bucket** surviving edges by their new stored-first endpoint.
//!    Placement of buckets in the output array follows one of the two
//!    policies the paper describes (see [`Placement`]).
//! 3. **Sort & accumulate** within each bucket by the second endpoint,
//!    merging duplicate edges and shortening the bucket.
//! 4. **Compact** the shortened buckets into dense storage ("copied back
//!    out into the original graph's storage").

use crate::{contracted_self_loops_into, relabel_into, Contraction};
use pcd_graph::{canonical_order, Graph, GraphParts};
use pcd_matching::Matching;
use pcd_util::scan::exclusive_prefix_sum;
use pcd_util::sync::{
    as_atomic_u32, as_atomic_u64, as_atomic_usize, AtomicUsize, SendPtr, RELAXED,
};
use pcd_util::VertexId;

use rayon::prelude::*;

/// Bucket placement policy in the scatter phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Deterministic: per-vertex counts + parallel prefix sum give each
    /// bucket a fixed offset; buckets appear in ascending vertex order.
    /// ("Storing the buckets contiguously requires synchronizing on a
    /// prefix sum.")
    PrefixSum,
    /// Paper-faithful racy variant: buckets claim space with one global
    /// fetch-and-add, in whatever order threads arrive. The resulting
    /// layout is schedule-dependent (the *graph* is the same up to edge
    /// order); the paper notes this needs no synchronisation "beyond an
    /// atomic fetch-and-add".
    FetchAdd,
}

/// Contracts `g` along matching `m` with the default deterministic
/// placement.
pub fn contract(g: &Graph, m: &Matching) -> Contraction {
    contract_with_policy(g, m, Placement::PrefixSum)
}

/// Contracts `g` along matching `m` with an explicit placement policy.
///
/// Owning convenience wrapper over [`contract_into`]: allocates a fresh
/// [`ContractScratch`] and empty output storage per call. The driver's
/// level loop uses [`contract_into`] directly; this entry point stays for
/// ablations, oracles, and one-shot callers.
pub fn contract_with_policy(g: &Graph, m: &Matching, placement: Placement) -> Contraction {
    let mut scratch = ContractScratch::new();
    let (graph, num_new) = contract_into(g, m, placement, &mut scratch, GraphParts::default());
    Contraction {
        graph,
        new_of_old: scratch.take_new_of_old(),
        num_new,
    }
}

/// Reusable working storage for [`contract_into`]: the relabel map and its
/// prefix-sum buffer, the matched-edge bitset, relabelled endpoints, bucket
/// counts/offsets/cursors, the bucketed temp arrays, the radix kernel's
/// ping-pong arena ([`crate::radix`]), and the shortened bucket lengths.
/// Every buffer is cleared and logically resized per call; capacity only
/// grows, so steady-state contraction allocates nothing.
#[derive(Debug, Default)]
pub struct ContractScratch {
    pub(crate) is_leader: Vec<usize>,
    pub(crate) new_of_old: Vec<VertexId>,
    pub(crate) matched_bits: Vec<u64>,
    pub(crate) new_src: Vec<u32>,
    pub(crate) new_dst: Vec<u32>,
    pub(crate) counts: Vec<usize>,
    pub(crate) bucket_off: Vec<usize>,
    pub(crate) cursor: Vec<usize>,
    pub(crate) tmp_dst: Vec<u32>,
    pub(crate) tmp_w: Vec<u64>,
    pub(crate) radix_dst: Vec<u32>,
    pub(crate) radix_w: Vec<u64>,
    pub(crate) uniq: Vec<usize>,
    pub(crate) final_off: Vec<usize>,
}

impl ContractScratch {
    /// A scratch with no retained capacity.
    pub fn new() -> Self {
        ContractScratch::default()
    }

    /// The old→new community map of the most recent [`contract_into`] call.
    pub fn new_of_old(&self) -> &[VertexId] {
        &self.new_of_old
    }

    /// Moves the old→new map out (for callers assembling a [`Contraction`]).
    pub fn take_new_of_old(&mut self) -> Vec<VertexId> {
        std::mem::take(&mut self.new_of_old)
    }

    /// Puts an old→new map back (fault-injection harness round-trip).
    pub fn set_new_of_old(&mut self, map: Vec<VertexId>) {
        self.new_of_old = map;
    }

    /// Heap bytes retained by this scratch (capacity, not length) — summed
    /// into the engine's scratch-memory ceiling ledger.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.is_leader.capacity() * size_of::<usize>()
            + self.new_of_old.capacity() * size_of::<VertexId>()
            + self.matched_bits.capacity() * size_of::<u64>()
            + self.new_src.capacity() * size_of::<u32>()
            + self.new_dst.capacity() * size_of::<u32>()
            + self.counts.capacity() * size_of::<usize>()
            + self.bucket_off.capacity() * size_of::<usize>()
            + self.cursor.capacity() * size_of::<usize>()
            + self.tmp_dst.capacity() * size_of::<u32>()
            + self.tmp_w.capacity() * size_of::<u64>()
            + self.radix_dst.capacity() * size_of::<u32>()
            + self.radix_w.capacity() * size_of::<u64>()
            + self.uniq.capacity() * size_of::<usize>()
            + self.final_off.capacity() * size_of::<usize>()
    }
}

/// Contracts `g` along matching `m`, scattering the result into recycled
/// storage: `parts` supplies the output graph's six arrays (their capacity
/// is reused; contents are overwritten) and `scratch` every intermediate
/// buffer. Returns the contracted graph and `num_new`; the old→new map is
/// left in `scratch` ([`ContractScratch::new_of_old`]).
///
/// The emitted graph is bit-identical to [`contract_with_policy`]'s for
/// either placement policy and any thread count. Total weight is conserved
/// by construction, so the output graph inherits the parent's total
/// without a reduction pass (debug builds re-verify).
pub fn contract_into(
    g: &Graph,
    m: &Matching,
    placement: Placement,
    scratch: &mut ContractScratch,
    mut parts: GraphParts,
) -> (Graph, usize) {
    let ContractScratch {
        is_leader,
        new_of_old,
        matched_bits,
        new_src,
        new_dst,
        counts,
        bucket_off,
        cursor,
        tmp_dst,
        tmp_w,
        radix_dst: _,
        radix_w: _,
        uniq,
        final_off,
    } = scratch;

    let num_new = relabel_into(g, m, is_leader, new_of_old);
    contracted_self_loops_into(g, m, new_of_old, num_new, &mut parts.self_loop);
    let new_of_old: &[VertexId] = new_of_old;

    let ne = g.num_edges();

    // Phase 1: relabel + re-canonicalise. Dead edges (now internal to a new
    // vertex) are marked with NO_VERTEX and their weight folded into the
    // self-loop array. Matched edges were already folded by
    // `contracted_self_loops_into`, so they are simply marked dead here.
    // Membership lives in a bitset: |E|/64 words instead of |E| bools.
    matched_bits.clear();
    matched_bits.resize(ne.div_ceil(64), 0);
    for &e in m.matched_edges() {
        matched_bits[e >> 6] |= 1 << (e & 63);
    }
    let matched = |e: usize| matched_bits[e >> 6] >> (e & 63) & 1 == 1;
    new_src.clear();
    new_src.resize(ne, 0);
    new_dst.clear();
    new_dst.resize(ne, 0);
    {
        let src_c = as_atomic_u32(new_src);
        let dst_c = as_atomic_u32(new_dst);
        let self_c = as_atomic_u64(&mut parts.self_loop);
        (0..ne).into_par_iter().for_each(|e| {
            // ORDERING: RELAXED suffices for every access in this loop —
            // slot `e` is written by exactly this task (self-loops use
            // fetch_add for the only cross-task accumulation, which needs
            // atomicity but no ordering) and the par_iter join barrier
            // publishes all writes before the sequential reads below.
            let (i, j, w) = g.edge(e);
            let (ni, nj) = (new_of_old[i as usize], new_of_old[j as usize]);
            if ni == nj {
                // Internal to a merged pair. The matched edge itself was
                // already folded; any other coinciding edge folds here.
                if !matched(e) {
                    self_c[ni as usize].fetch_add(w, RELAXED);
                }
                src_c[e].store(pcd_util::NO_VERTEX, RELAXED);
            } else {
                let (a, b) = canonical_order(ni, nj);
                src_c[e].store(a, RELAXED);
                dst_c[e].store(b, RELAXED);
            }
        });
    }
    let new_src: &[u32] = new_src;
    let new_dst: &[u32] = new_dst;

    // Phase 2: size buckets.
    counts.clear();
    counts.resize(num_new, 0);
    {
        let cells = as_atomic_usize(counts);
        (0..ne).into_par_iter().for_each(|e| {
            let s = new_src[e];
            if s != pcd_util::NO_VERTEX {
                // ORDERING: RELAXED — pure counter increment; atomicity is
                // all that matters and the join barrier publishes totals.
                cells[s as usize].fetch_add(1, RELAXED);
            }
        });
    }
    let counts: &[usize] = counts;
    let live: usize = counts.iter().sum();

    // Bucket offsets per placement policy.
    match placement {
        Placement::PrefixSum => {
            bucket_off.clear();
            // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
            bucket_off.extend_from_slice(counts);
            exclusive_prefix_sum(bucket_off);
        }
        Placement::FetchAdd => {
            // One global cursor; buckets claim their extent on first touch
            // by any thread, in arrival order.
            // ORDERING: RELAXED — the fetch_add only needs a unique extent
            // (atomicity); each `off[v]` slot has a single writer and is
            // read only after the join barrier publishes it.
            bucket_off.clear();
            bucket_off.resize(num_new, usize::MAX);
            let global = AtomicUsize::new(0);
            let off = as_atomic_usize(bucket_off);
            (0..num_new).into_par_iter().for_each(|v| {
                if counts[v] > 0 {
                    let at = global.fetch_add(counts[v], RELAXED);
                    off[v].store(at, RELAXED);
                } else {
                    off[v].store(0, RELAXED);
                }
            });
        }
    }
    let bucket_off: &[usize] = bucket_off;

    // Phase 2b: scatter into the bucketed temp arrays.
    cursor.clear();
    // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
    cursor.extend_from_slice(bucket_off);
    tmp_dst.clear();
    tmp_dst.resize(live, 0);
    tmp_w.clear();
    tmp_w.resize(live, 0);
    {
        let cur = as_atomic_usize(cursor);
        let dst_c = as_atomic_u32(tmp_dst);
        let w_c = as_atomic_u64(tmp_w);
        (0..ne).into_par_iter().for_each(|e| {
            let s = new_src[e];
            if s != pcd_util::NO_VERTEX {
                // ORDERING: RELAXED — fetch_add hands each task a distinct
                // `pos`, so the stores have one writer per slot; the join
                // barrier publishes them to the dedup pass that follows.
                let pos = cur[s as usize].fetch_add(1, RELAXED);
                dst_c[pos].store(new_dst[e], RELAXED);
                w_c[pos].store(g.weights()[e], RELAXED);
            }
        });
    }

    // Phase 3: per-bucket sort + accumulate (shortening buckets).
    // Buckets are disjoint ranges of tmp arrays; raw-pointer access is safe.
    uniq.clear();
    uniq.resize(num_new, 0);
    {
        let dst_ptr = SendPtr(tmp_dst.as_mut_ptr());
        let w_ptr = SendPtr(tmp_w.as_mut_ptr());
        uniq.par_iter_mut().enumerate().for_each(|(v, u)| {
            let (b, len) = (bucket_off[v], counts[v]);
            if len == 0 {
                return;
            }
            let (dst_ptr, w_ptr) = (&dst_ptr, &w_ptr);
            // SAFETY: `bucket_off` is the exclusive prefix sum of
            // `counts` (or the FetchAdd equivalent: disjoint extents
            // claimed off one cursor), so each vertex's range
            // `[b, b + len)` is disjoint from every other task's and
            // in-bounds for the bucket arrays; the arrays are exclusively
            // borrowed for the duration of the parallel region.
            unsafe {
                let d = std::slice::from_raw_parts_mut(dst_ptr.0.add(b), len);
                let w = std::slice::from_raw_parts_mut(w_ptr.0.add(b), len);
                *u = sort_accumulate(d, w);
            }
        });
    }
    let uniq: &[usize] = uniq;
    let tmp_dst: &[u32] = tmp_dst;
    let tmp_w: &[u64] = tmp_w;

    // Phase 4: compact shortened buckets into dense final storage. The
    // final bucket order matches the placement policy's bucket order.
    final_off.clear();
    // analyze: allow(alloc, reason = "copy into a recycled scratch buffer; capacity amortizes to the level ceiling")
    final_off.extend_from_slice(uniq);
    let total = exclusive_prefix_sum(final_off);
    let final_off: &[usize] = final_off;
    parts.src.clear();
    parts.src.resize(total, 0);
    parts.dst.clear();
    parts.dst.resize(total, 0);
    parts.weight.clear();
    parts.weight.resize(total, 0);
    {
        let src_c = as_atomic_u32(&mut parts.src);
        let dst_c = as_atomic_u32(&mut parts.dst);
        let w_c = as_atomic_u64(&mut parts.weight);
        (0..num_new).into_par_iter().for_each(|v| {
            // ORDERING: RELAXED — bucket v's extent [to, to+uniq[v]) is
            // disjoint per task, so each slot has one writer; the join
            // barrier publishes the compacted arrays to the builder below.
            let from = bucket_off[v];
            let to = final_off[v];
            for k in 0..uniq[v] {
                src_c[to + k].store(v as u32, RELAXED);
                dst_c[to + k].store(tmp_dst[from + k], RELAXED);
                w_c[to + k].store(tmp_w[from + k], RELAXED);
            }
        });
    }
    parts.bucket_begin.clear();
    // analyze: allow(alloc, reason = "fill of recycled GraphParts buffers; ping-pong recycling amortizes capacity")
    parts.bucket_begin.extend_from_slice(final_off);
    parts.bucket_end.clear();
    parts
        .bucket_end
        // analyze: allow(alloc, reason = "fill of recycled GraphParts buffers; ping-pong recycling amortizes capacity")
        .extend((0..num_new).map(|v| final_off[v] + uniq[v]));

    // Contraction conserves Σw + Σself exactly, so the parent's total
    // carries over; debug builds re-verify inside `from_recycled_parts`.
    let graph = Graph::from_recycled_parts(num_new, parts, g.total_weight());
    (graph, num_new)
}

/// Sorts a bucket by destination and accumulates duplicate destinations in
/// place; returns the number of unique entries (the shortened length).
///
/// The sort is a tandem in-place sort (insertion sort for short buckets,
/// heapsort above that) that swaps `dst` and `w` together — no permutation
/// buffer, no heap allocation, O(1) extra space. Equal destinations may
/// land in any relative order, but their weights are summed with exact
/// integer addition, so the accumulated output is order-independent.
pub(crate) fn sort_accumulate(dst: &mut [u32], w: &mut [u64]) -> usize {
    let len = dst.len();
    if len == 0 {
        return 0;
    }
    tandem_sort(dst, w);
    let mut out = 0usize;
    let mut k = 0usize;
    while k < len {
        let d = dst[k];
        let mut acc = w[k];
        k += 1;
        while k < len && dst[k] == d {
            acc += w[k];
            k += 1;
        }
        // `out` trails `k` by at least one, so these writes only touch
        // already-consumed slots.
        dst[out] = d;
        w[out] = acc;
        out += 1;
    }
    out
}

/// Insertion-sort cutoff for [`tandem_sort`]; buckets at or below this
/// length skip the heap machinery.
const TANDEM_INSERTION_CUTOFF: usize = 24;

/// Sorts `dst` ascending, applying the identical permutation to `w`,
/// entirely in place.
fn tandem_sort(dst: &mut [u32], w: &mut [u64]) {
    let n = dst.len();
    if n <= TANDEM_INSERTION_CUTOFF {
        for i in 1..n {
            let (d, wi) = (dst[i], w[i]);
            let mut j = i;
            while j > 0 && dst[j - 1] > d {
                dst[j] = dst[j - 1];
                w[j] = w[j - 1];
                j -= 1;
            }
            dst[j] = d;
            w[j] = wi;
        }
        return;
    }
    for root in (0..n / 2).rev() {
        sift_down(dst, w, root, n);
    }
    for end in (1..n).rev() {
        dst.swap(0, end);
        w.swap(0, end);
        sift_down(dst, w, 0, end);
    }
}

fn sift_down(dst: &mut [u32], w: &mut [u64], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end && dst[child + 1] > dst[child] {
            child += 1;
        }
        if dst[root] >= dst[child] {
            return;
        }
        dst.swap(root, child);
        w.swap(root, child);
        root = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_fingerprint;
    use pcd_matching::seq::match_sequential_greedy;

    fn contract_uniform(g: &Graph) -> Contraction {
        let s = vec![1.0; g.num_edges()];
        let m = match_sequential_greedy(g, &s);
        contract(g, &m)
    }

    #[test]
    fn weight_conserved_on_clique_ring() {
        let g = pcd_gen::classic::clique_ring(4, 4);
        let c = contract_uniform(&g);
        assert_eq!(c.graph.total_weight(), g.total_weight());
        assert_eq!(c.graph.validate(), Ok(()));
        assert!(c.num_new < g.num_vertices());
    }

    #[test]
    fn pair_merge_folds_edge() {
        let g = pcd_graph::GraphBuilder::new(2).add_edge(0, 1, 7).build();
        let c = contract_uniform(&g);
        assert_eq!(c.num_new, 1);
        assert_eq!(c.graph.num_edges(), 0);
        assert_eq!(c.graph.self_loop(0), 7);
    }

    #[test]
    fn parallel_edges_between_pairs_accumulate() {
        // Square 0-1-2-3-0: match (0,1) and (2,3); the two cross edges
        // (1,2) and (3,0) become parallel edges between the two new
        // vertices and must merge into weight 2.
        let g = pcd_graph::GraphBuilder::new(4)
            .add_pairs([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let s: Vec<f64> = (0..g.num_edges())
            .map(|e| {
                let (i, j, _) = g.edge(e);
                let key = (i.min(j), i.max(j));
                if key == (0, 1) || key == (2, 3) {
                    2.0
                } else {
                    1.0
                }
            })
            .collect();
        let m = match_sequential_greedy(&g, &s);
        assert_eq!(m.len(), 2);
        let c = contract(&g, &m);
        assert_eq!(c.num_new, 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.graph.weights(), &[2]);
        assert_eq!(c.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn empty_matching_is_isomorphic_copy() {
        let g = pcd_gen::classic::clique_ring(3, 4);
        let m = pcd_matching::Matching::empty(g.num_vertices());
        let c = contract(&g, &m);
        assert_eq!(c.num_new, g.num_vertices());
        assert_eq!(edge_fingerprint(&c.graph), edge_fingerprint(&g));
        assert_eq!(c.graph.self_loops(), g.self_loops());
    }

    #[test]
    fn fetch_add_placement_same_graph() {
        let p = pcd_gen::RmatParams::paper(9, 17);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = match_sequential_greedy(&g, &s);
        let a = contract_with_policy(&g, &m, Placement::PrefixSum);
        let b = contract_with_policy(&g, &m, Placement::FetchAdd);
        assert_eq!(a.num_new, b.num_new);
        assert_eq!(edge_fingerprint(&a.graph), edge_fingerprint(&b.graph));
        assert_eq!(a.graph.self_loops(), b.graph.self_loops());
        assert_eq!(b.graph.validate(), Ok(()));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = pcd_gen::RmatParams::paper(9, 23);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = match_sequential_greedy(&g, &s);
        let c1 = pcd_util::pool::with_threads(1, || contract(&g, &m));
        let c4 = pcd_util::pool::with_threads(4, || contract(&g, &m));
        assert_eq!(c1.graph.srcs(), c4.graph.srcs());
        assert_eq!(c1.graph.dsts(), c4.graph.dsts());
        assert_eq!(c1.graph.weights(), c4.graph.weights());
        assert_eq!(c1.new_of_old, c4.new_of_old);
    }

    #[test]
    fn rmat_weight_conserved_through_contraction() {
        let p = pcd_gen::RmatParams::paper(10, 5);
        let g = pcd_gen::rmat_graph(&p);
        let s: Vec<f64> = g.weights().iter().map(|&w| w as f64).collect();
        let m = pcd_matching::match_unmatched_list(&g, &s);
        let c = contract(&g, &m);
        assert_eq!(c.graph.total_weight(), g.total_weight());
        assert_eq!(c.graph.validate(), Ok(()));
        assert_eq!(c.num_new, g.num_vertices() - m.len());
    }

    #[test]
    fn sort_accumulate_merges_runs() {
        let mut d = vec![5u32, 3, 5, 3, 9];
        let mut w = vec![1u64, 2, 3, 4, 5];
        let n = sort_accumulate(&mut d, &mut w);
        assert_eq!(n, 3);
        assert_eq!(&d[..n], &[3, 5, 9]);
        assert_eq!(&w[..n], &[6, 4, 5]);
    }
}
