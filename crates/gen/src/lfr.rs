//! LFR-style community benchmark (Lancichinetti–Fortunato–Radicchi
//! flavour): power-law degrees, power-law community sizes, and an explicit
//! mixing parameter `μ` controlling the fraction of each vertex's edges
//! that leave its community.
//!
//! This is the standard stress test for community detectors: quality
//! should degrade gracefully as `μ → 0.5` and collapse beyond. The
//! generator is simplified from full LFR (stub counts are drawn per vertex
//! rather than matched exactly) but preserves the three defining knobs.

use crate::sbm::pareto_int;
use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rayon::prelude::*;

/// LFR-style parameters.
#[derive(Debug, Clone, Copy)]
pub struct LfrParams {
    /// Total vertex count.
    pub num_vertices: usize,
    /// Degree bounds and power-law exponent (classic LFR: τ1 ≈ 2–3).
    pub min_degree: usize,
    /// Largest drawn degree.
    pub max_degree: usize,
    /// Pareto shape of the degree distribution (τ1).
    pub degree_exponent: f64,
    /// Community size bounds and exponent (classic LFR: τ2 ≈ 1–2).
    pub min_community: usize,
    /// Largest community size.
    pub max_community: usize,
    /// Pareto shape of community sizes (τ2).
    pub community_exponent: f64,
    /// Fraction of each vertex's edges leaving its community, in `[0, 1)`.
    pub mixing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LfrParams {
    /// A standard benchmark instance at the given size and mixing.
    pub fn benchmark(num_vertices: usize, mixing: f64, seed: u64) -> Self {
        LfrParams {
            num_vertices,
            min_degree: 5,
            max_degree: (num_vertices / 20).max(10),
            degree_exponent: 2.5,
            min_community: 10,
            max_community: (num_vertices / 10).max(20),
            community_exponent: 1.5,
            mixing,
            seed,
        }
    }
}

/// A generated LFR-style graph with its planted assignment.
pub struct LfrGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Planted community per vertex.
    pub ground_truth: Vec<VertexId>,
    /// Number of planted communities.
    pub num_communities: usize,
}

/// Generates the LFR-style graph; deterministic and thread-independent.
pub fn lfr_graph(p: &LfrParams) -> LfrGraph {
    assert!((0.0..1.0).contains(&p.mixing));
    assert!(p.min_degree >= 1 && p.max_degree >= p.min_degree);

    // Community layout (sequential, cheap).
    let mut rng = stream(p.seed, u64::MAX);
    let mut sizes = Vec::new();
    let mut covered = 0usize;
    while covered < p.num_vertices {
        let s = pareto_int(
            &mut rng,
            p.min_community,
            p.max_community,
            p.community_exponent,
        )
        .min(p.num_vertices - covered);
        sizes.push(s);
        covered += s;
    }
    let mut start = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for &s in &sizes {
        start.push(acc);
        acc += s;
    }
    let mut ground_truth = vec![0u32; p.num_vertices];
    for (c, (&st, &sz)) in start.iter().zip(sizes.iter()).enumerate() {
        ground_truth[st..st + sz]
            .iter_mut()
            .for_each(|g| *g = c as u32);
    }

    // Per-vertex degree draws and partner selection.
    let edges: Vec<(VertexId, VertexId, Weight)> = (0..p.num_vertices as u64)
        .into_par_iter()
        .flat_map_iter(|v| {
            let mut rng = stream(p.seed, v);
            let vu = v as usize;
            let c = ground_truth[vu] as usize;
            let (st, sz) = (start[c], sizes[c]);
            // Power-law degree; halve because both endpoints draw stubs.
            let d = pareto_int(&mut rng, p.min_degree, p.max_degree, p.degree_exponent);
            let d_half = (d as f64 / 2.0).ceil() as usize;
            let d_ext = (d_half as f64 * p.mixing).round() as usize;
            let d_int = (d_half - d_ext).min(4 * sz);
            let mut out = Vec::with_capacity(d_half);
            if sz > 1 {
                for _ in 0..d_int {
                    let mut u = st + rng.gen_range(0..sz);
                    if u == vu {
                        u = st + (u - st + 1) % sz;
                    }
                    out.push((v as u32, u as u32, 1u64));
                }
            }
            for _ in 0..d_ext {
                let mut u = rng.gen_range(0..p.num_vertices);
                if u == vu {
                    u = (u + 1) % p.num_vertices;
                }
                out.push((v as u32, u as u32, 1u64));
            }
            out
        })
        .collect();

    LfrGraph {
        graph: builder::from_edges(p.num_vertices, edges),
        ground_truth,
        num_communities: sizes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_graph() {
        let g = lfr_graph(&LfrParams::benchmark(2_000, 0.2, 1));
        assert_eq!(g.graph.validate(), Ok(()));
        assert_eq!(g.ground_truth.len(), 2_000);
        assert!(g.num_communities > 1);
    }

    #[test]
    fn mixing_controls_external_fraction() {
        let ext_fraction = |mu: f64| {
            let g = lfr_graph(&LfrParams::benchmark(3_000, mu, 7));
            let (mut intra, mut inter) = (0u64, 0u64);
            for (i, j, w) in g.graph.edges() {
                if g.ground_truth[i as usize] == g.ground_truth[j as usize] {
                    intra += w;
                } else {
                    inter += w;
                }
            }
            inter as f64 / (intra + inter) as f64
        };
        let low = ext_fraction(0.1);
        let high = ext_fraction(0.4);
        assert!(low < high, "low {low} vs high {high}");
        // The measured mixing should be in the right neighbourhood (random
        // external partners may land internally, so allow slack).
        assert!((0.03..0.30).contains(&low), "low = {low}");
        assert!((0.25..0.60).contains(&high), "high = {high}");
    }

    #[test]
    fn deterministic() {
        let p = LfrParams::benchmark(1_000, 0.3, 4);
        let a = lfr_graph(&p);
        let b = lfr_graph(&p);
        assert_eq!(a.graph.srcs(), b.graph.srcs());
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn degrees_follow_power_law_shape() {
        let g = lfr_graph(&LfrParams::benchmark(5_000, 0.2, 9));
        let csr = pcd_graph::Csr::from_graph(&g.graph);
        let s = pcd_graph::stats::degree_stats(&csr);
        assert!(s.max as f64 > 4.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }
}
