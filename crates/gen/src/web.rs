//! Hierarchical nested-community generator — the stand-in for the
//! uk-2007-05 web crawl.
//!
//! Web graphs exhibit deep, nested locality: pages cluster into sites,
//! sites into domains. The generator plants a two-level hierarchy
//! (domains → sites) with Pareto-distributed sizes and draws per-vertex
//! Poisson partner counts at three locality levels (site, domain, global),
//! plus hub vertices per domain that attract extra links to give the
//! power-law in-degree shape crawls show.

use crate::sbm::{pareto_int, poisson};
use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rayon::prelude::*;

/// Parameters for the web-like generator.
#[derive(Debug, Clone, Copy)]
pub struct WebParams {
    /// Total vertex count.
    pub num_vertices: usize,
    /// Domain size bounds (Pareto-truncated, shape `domain_exponent`).
    pub min_domain: usize,
    /// Largest domain size.
    pub max_domain: usize,
    /// Pareto shape of domain sizes.
    pub domain_exponent: f64,
    /// Site size bounds within a domain.
    pub min_site: usize,
    /// Largest site size.
    pub max_site: usize,
    /// Pareto shape of site sizes.
    pub site_exponent: f64,
    /// Mean partner draws at each locality level.
    pub site_degree: f64,
    /// Mean domain-level partner draws per vertex.
    pub domain_degree: f64,
    /// Mean global partner draws per vertex.
    pub global_degree: f64,
    /// Fraction of each domain's vertices that act as hubs.
    pub hub_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WebParams {
    /// uk-2007-05-flavoured defaults at a configurable vertex count.
    pub fn uk_like(num_vertices: usize, seed: u64) -> Self {
        WebParams {
            num_vertices,
            min_domain: 50,
            max_domain: (num_vertices / 20).max(100),
            domain_exponent: 1.3,
            min_site: 8,
            max_site: 200,
            site_exponent: 1.5,
            site_degree: 18.0,
            domain_degree: 6.0,
            global_degree: 1.0,
            hub_fraction: 0.02,
            seed,
        }
    }
}

/// A generated web-like graph plus its planted hierarchy.
pub struct WebGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Site (fine-level community) id per vertex.
    pub site_of: Vec<VertexId>,
    /// Domain (coarse-level community) id per vertex.
    pub domain_of: Vec<VertexId>,
    /// Number of planted sites (fine level).
    pub num_sites: usize,
    /// Number of planted domains (coarse level).
    pub num_domains: usize,
}

/// Generates the web-like graph. Deterministic and thread-count independent.
pub fn web_graph(p: &WebParams) -> WebGraph {
    assert!(p.num_vertices > 0);
    // Carve vertices into domains, then domains into sites (sequential,
    // O(#sites)).
    let mut rng = stream(p.seed, u64::MAX);
    let mut domain_of = vec![0u32; p.num_vertices];
    let mut site_of = vec![0u32; p.num_vertices];
    let mut domain_ranges: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut site_ranges: Vec<(usize, usize)> = Vec::new();
    let mut pos = 0usize;
    while pos < p.num_vertices {
        let dlen = pareto_int(&mut rng, p.min_domain, p.max_domain, p.domain_exponent)
            .min(p.num_vertices - pos);
        let d = domain_ranges.len() as u32;
        domain_ranges.push((pos, dlen));
        let dend = pos + dlen;
        domain_of[pos..dend].iter_mut().for_each(|x| *x = d);
        let mut spos = pos;
        while spos < dend {
            let slen =
                pareto_int(&mut rng, p.min_site, p.max_site, p.site_exponent).min(dend - spos);
            let s = site_ranges.len() as u32;
            site_ranges.push((spos, slen));
            site_of[spos..spos + slen].iter_mut().for_each(|x| *x = s);
            spos += slen;
        }
        pos = dend;
    }

    // Hubs: the first ⌈hub_fraction·len⌉ vertices of each domain.
    let hub_count_of_domain: Vec<usize> = domain_ranges
        .iter()
        .map(|&(_, len)| ((len as f64 * p.hub_fraction).ceil() as usize).clamp(1, len))
        .collect();

    let edges: Vec<(VertexId, VertexId, Weight)> = (0..p.num_vertices as u64)
        .into_par_iter()
        .flat_map_iter(|v| {
            let mut rng = stream(p.seed, v);
            let vu = v as usize;
            let s = site_of[vu] as usize;
            let d = domain_of[vu] as usize;
            let (sst, slen) = site_ranges[s];
            let (dst_, dlen) = domain_ranges[d];
            let nhub = hub_count_of_domain[d];
            let mut out = Vec::new();
            let pick_other = |rng: &mut rand_chacha::ChaCha8Rng, st: usize, len: usize| {
                let mut u = st + rng.gen_range(0..len);
                if u == vu {
                    u = st + (u - st + 1) % len;
                }
                u as u32
            };
            if slen > 1 {
                for _ in 0..poisson(&mut rng, p.site_degree).min(4 * slen) {
                    let u = pick_other(&mut rng, sst, slen);
                    out.push((v as u32, u, 1u64));
                }
            }
            if dlen > 1 {
                for _ in 0..poisson(&mut rng, p.domain_degree).min(4 * dlen) {
                    // Half the domain-level links go to hubs.
                    let u = if rng.gen::<bool>() {
                        pick_other(&mut rng, dst_, nhub.max(1))
                    } else {
                        pick_other(&mut rng, dst_, dlen)
                    };
                    out.push((v as u32, u, 1u64));
                }
            }
            if p.num_vertices > 1 {
                for _ in 0..poisson(&mut rng, p.global_degree) {
                    let u = pick_other(&mut rng, 0, p.num_vertices);
                    out.push((v as u32, u, 1u64));
                }
            }
            out
        })
        .collect();

    WebGraph {
        graph: builder::from_edges(p.num_vertices, edges),
        site_of,
        domain_of,
        num_sites: site_ranges.len(),
        num_domains: domain_ranges.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebParams {
        let mut p = WebParams::uk_like(3_000, 9);
        p.max_domain = 400;
        p
    }

    #[test]
    fn hierarchy_is_consistent() {
        let w = web_graph(&small());
        assert_eq!(w.site_of.len(), 3_000);
        assert!(w.num_domains >= 2);
        assert!(w.num_sites >= w.num_domains);
        // Every site lies inside exactly one domain.
        let mut site_domain = vec![None; w.num_sites];
        for v in 0..3_000 {
            let s = w.site_of[v] as usize;
            let d = w.domain_of[v];
            match site_domain[s] {
                None => site_domain[s] = Some(d),
                Some(prev) => assert_eq!(prev, d, "site {s} spans domains"),
            }
        }
        assert_eq!(w.graph.validate(), Ok(()));
    }

    #[test]
    fn deterministic() {
        let a = web_graph(&small());
        let b = web_graph(&small());
        assert_eq!(a.graph.srcs(), b.graph.srcs());
        assert_eq!(a.graph.weights(), b.graph.weights());
    }

    #[test]
    fn thread_count_independent() {
        let a = pcd_util::pool::with_threads(1, || web_graph(&small()));
        let b = pcd_util::pool::with_threads(4, || web_graph(&small()));
        assert_eq!(a.graph.srcs(), b.graph.srcs());
    }

    #[test]
    fn locality_dominates() {
        let w = web_graph(&small());
        let (mut same_site, mut same_domain, mut global) = (0u64, 0u64, 0u64);
        for (i, j, wt) in w.graph.edges() {
            if w.site_of[i as usize] == w.site_of[j as usize] {
                same_site += wt;
            } else if w.domain_of[i as usize] == w.domain_of[j as usize] {
                same_domain += wt;
            } else {
                global += wt;
            }
        }
        assert!(same_site > same_domain, "{same_site} vs {same_domain}");
        assert!(same_domain > global, "{same_domain} vs {global}");
    }

    #[test]
    fn has_skewed_degrees() {
        let w = web_graph(&small());
        let csr = pcd_graph::Csr::from_graph(&w.graph);
        let stats = pcd_graph::stats::degree_stats(&csr);
        // Hubs should push the max degree well above the mean.
        assert!(
            stats.max as f64 > 5.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }
}
