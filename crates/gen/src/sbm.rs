//! Planted-partition (stochastic block model) generator — the stand-in for
//! the soc-LiveJournal1 snapshot.
//!
//! Community sizes follow a truncated Pareto distribution; every vertex
//! draws a Poisson number of internal partners (within its community) and
//! external partners (anywhere). The planted assignment is returned as
//! ground truth so quality experiments can report NMI/ARI, which is stronger
//! evidence than the paper's qualitative modularity remark.

use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Draws a Poisson variate (Knuth's method; fine for the small λ used here).
pub(crate) fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    debug_assert!(
        lambda >= 0.0 && lambda < 64.0,
        "poisson λ out of supported range"
    );
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws a truncated integer Pareto variate in `[min, max]` with shape `alpha`.
pub(crate) fn pareto_int(rng: &mut ChaCha8Rng, min: usize, max: usize, alpha: f64) -> usize {
    debug_assert!(min >= 1 && max >= min && alpha > 0.0);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let lo = min as f64;
    let hi = max as f64;
    // Inverse-CDF of a Pareto truncated to [lo, hi].
    let x = lo / (1.0 - u * (1.0 - (lo / hi).powf(alpha))).powf(1.0 / alpha);
    (x as usize).clamp(min, max)
}

/// Parameters for the planted-partition generator.
#[derive(Debug, Clone, Copy)]
pub struct SbmParams {
    /// Total vertex count.
    pub num_vertices: usize,
    /// Smallest / largest community sizes (Pareto-truncated).
    pub min_community: usize,
    /// Largest community size.
    pub max_community: usize,
    /// Pareto shape for community sizes (smaller → heavier tail).
    pub size_exponent: f64,
    /// Mean internal partner draws per vertex.
    pub internal_degree: f64,
    /// Mean external partner draws per vertex.
    pub external_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SbmParams {
    /// LiveJournal-flavoured defaults at a configurable vertex count:
    /// community-rich (strong internal/external contrast), skewed sizes.
    pub fn livejournal_like(num_vertices: usize, seed: u64) -> Self {
        SbmParams {
            num_vertices,
            min_community: 10,
            max_community: (num_vertices / 10).max(20),
            size_exponent: 1.6,
            internal_degree: 10.0,
            external_degree: 2.5,
            seed,
        }
    }

    /// Easy planted partition for quality oracles: `communities`
    /// equal-sized blocks (min = max community size, so the Pareto draw
    /// degenerates to a constant) with a strong internal/external degree
    /// contrast that any reasonable detector recovers near-perfectly.
    pub fn planted_partition(num_vertices: usize, communities: usize, seed: u64) -> Self {
        assert!(communities >= 1 && num_vertices >= 2 * communities);
        let size = num_vertices.div_ceil(communities).max(2);
        SbmParams {
            num_vertices,
            min_community: size,
            max_community: size,
            size_exponent: 1.0,
            internal_degree: 16.0,
            external_degree: 1.0,
            seed,
        }
    }
}

/// A generated planted-partition graph plus its ground truth.
pub struct SbmGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Planted community id per vertex.
    pub ground_truth: Vec<VertexId>,
    /// Number of planted communities.
    pub num_communities: usize,
}

/// Generates the planted-partition graph. Deterministic for `(params, seed)`
/// and independent of thread count.
pub fn sbm_graph(p: &SbmParams) -> SbmGraph {
    assert!(p.num_vertices > 0);
    assert!(p.min_community >= 2 && p.max_community >= p.min_community);

    // Community sizes: sequential draw (cheap — O(#communities)).
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    let mut size_rng = stream(p.seed, u64::MAX);
    while covered < p.num_vertices {
        let s = pareto_int(
            &mut size_rng,
            p.min_community,
            p.max_community,
            p.size_exponent,
        )
        .min(p.num_vertices - covered);
        sizes.push(s);
        covered += s;
    }
    // Community start offsets and per-vertex labels.
    let mut start = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &s in &sizes {
        start.push(acc);
        acc += s;
    }
    let mut ground_truth = vec![0u32; p.num_vertices];
    for (c, (&st, &sz)) in start.iter().zip(sizes.iter()).enumerate() {
        ground_truth[st..st + sz]
            .iter_mut()
            .for_each(|g| *g = c as u32);
    }

    // Per-vertex partner draws.
    let edges: Vec<(VertexId, VertexId, Weight)> = (0..p.num_vertices as u64)
        .into_par_iter()
        .flat_map_iter(|v| {
            let mut rng = stream(p.seed, v);
            let c = ground_truth[v as usize] as usize;
            let (st, sz) = (start[c], sizes[c]);
            let mut out = Vec::new();
            if sz > 1 {
                let din = poisson(&mut rng, p.internal_degree).min(4 * sz);
                for _ in 0..din {
                    let mut u = st + rng.gen_range(0..sz);
                    if u == v as usize {
                        u = st + (u - st + 1) % sz;
                    }
                    out.push((v as u32, u as u32, 1u64));
                }
            }
            let dout = poisson(&mut rng, p.external_degree);
            for _ in 0..dout {
                let mut u = rng.gen_range(0..p.num_vertices);
                if u == v as usize {
                    u = (u + 1) % p.num_vertices;
                }
                out.push((v as u32, u as u32, 1u64));
            }
            out
        })
        .collect();

    SbmGraph {
        graph: builder::from_edges(p.num_vertices, edges),
        ground_truth,
        num_communities: sizes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SbmParams {
        SbmParams {
            num_vertices: 2_000,
            min_community: 10,
            max_community: 100,
            size_exponent: 1.6,
            internal_degree: 8.0,
            external_degree: 1.5,
            seed: 5,
        }
    }

    #[test]
    fn covers_all_vertices() {
        let s = sbm_graph(&small());
        assert_eq!(s.ground_truth.len(), 2_000);
        assert!(s.num_communities > 1);
        let max_label = *s.ground_truth.iter().max().unwrap() as usize;
        assert_eq!(max_label + 1, s.num_communities);
        assert_eq!(s.graph.validate(), Ok(()));
    }

    #[test]
    fn deterministic() {
        let a = sbm_graph(&small());
        let b = sbm_graph(&small());
        assert_eq!(a.graph.srcs(), b.graph.srcs());
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn thread_count_independent() {
        let a = pcd_util::pool::with_threads(1, || sbm_graph(&small()));
        let b = pcd_util::pool::with_threads(4, || sbm_graph(&small()));
        assert_eq!(a.graph.srcs(), b.graph.srcs());
        assert_eq!(a.graph.weights(), b.graph.weights());
    }

    #[test]
    fn internal_edges_dominate() {
        let s = sbm_graph(&small());
        let (mut intra, mut inter) = (0u64, 0u64);
        for (i, j, w) in s.graph.edges() {
            if s.ground_truth[i as usize] == s.ground_truth[j as usize] {
                intra += w;
            } else {
                inter += w;
            }
        }
        assert!(
            intra as f64 > 2.0 * inter as f64,
            "intra {intra} not dominating inter {inter}"
        );
    }

    #[test]
    fn poisson_mean_close() {
        let mut rng = stream(1, 0);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 6.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = stream(2, 0);
        for _ in 0..10_000 {
            let x = pareto_int(&mut rng, 5, 50, 1.5);
            assert!((5..=50).contains(&x));
        }
    }

    #[test]
    fn pareto_is_skewed_small() {
        let mut rng = stream(3, 0);
        let small_draws = (0..10_000)
            .filter(|_| pareto_int(&mut rng, 5, 500, 1.5) < 20)
            .count();
        assert!(small_draws > 6_000, "only {small_draws} small draws");
    }
}
