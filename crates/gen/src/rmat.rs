//! R-MAT graph generation (Chakrabarti, Zhan, Faloutsos; SSCA#2 flavour).
//!
//! The paper generates `2^s · f` edges over `2^s` vertices with quadrant
//! probabilities `a = 0.55, b = c = 0.10, d = 0.25`, *perturbs* the
//! parameters at each recursion level (the "perturbed Kronecker product"),
//! accumulates repeated edges into weights, and keeps the largest connected
//! component.

use pcd_graph::subgraph::largest_component;
use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rayon::prelude::*;

/// R-MAT generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the vertex count (`s`; the paper uses 24).
    pub scale: u32,
    /// Edges generated per vertex (`f`; the paper uses 16).
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Per-level multiplicative noise on the parameters (SSCA#2 uses ~0.1);
    /// 0 disables perturbation.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatParams {
    /// The paper's parameters at a given scale and seed.
    pub fn paper(scale: u32, seed: u64) -> Self {
        RmatParams {
            scale,
            edge_factor: 16,
            a: 0.55,
            b: 0.10,
            c: 0.10,
            noise: 0.1,
            seed,
        }
    }

    /// The remaining (bottom-right) quadrant probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// `2^scale` vertices.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// `2^scale · edge_factor` raw edge draws.
    pub fn num_generated_edges(&self) -> usize {
        self.num_vertices() * self.edge_factor as usize
    }
}

/// Generates the raw R-MAT edge multiset (self-loops and duplicates
/// included, as the paper notes). Deterministic per `(seed, edge index)`.
pub fn rmat_edges(p: &RmatParams) -> Vec<(VertexId, VertexId, Weight)> {
    assert!(p.scale > 0 && p.scale <= 31, "scale out of range");
    assert!(
        (p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-9 && p.d() >= 0.0,
        "quadrant probabilities must sum to 1"
    );
    (0..p.num_generated_edges() as u64)
        .into_par_iter()
        .map(|idx| {
            let mut rng = stream(p.seed, idx);
            let (mut i, mut j) = (0u32, 0u32);
            for _ in 0..p.scale {
                // Perturb the quadrant probabilities at each level.
                let jitter = |base: f64, r: &mut rand_chacha::ChaCha8Rng| {
                    base * (1.0 + p.noise * (2.0 * r.gen::<f64>() - 1.0))
                };
                let (pa, pb, pc, pd) = (
                    jitter(p.a, &mut rng),
                    jitter(p.b, &mut rng),
                    jitter(p.c, &mut rng),
                    jitter(p.d(), &mut rng),
                );
                let total = pa + pb + pc + pd;
                let u = rng.gen::<f64>() * total;
                i <<= 1;
                j <<= 1;
                if u < pa {
                    // top-left: no bits set
                } else if u < pa + pb {
                    j |= 1;
                } else if u < pa + pb + pc {
                    i |= 1;
                } else {
                    i |= 1;
                    j |= 1;
                }
            }
            (i, j, 1u64)
        })
        .collect()
}

/// Full paper pipeline: generate, accumulate duplicates into weights
/// (self-loops land in the self-loop array), then extract the largest
/// connected component. Returns the component graph.
pub fn rmat_graph(p: &RmatParams) -> Graph {
    let edges = rmat_edges(p);
    let g = builder::from_edges(p.num_vertices(), edges);
    largest_component(&g).graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcd_graph::components::{components, count_components};

    fn small() -> RmatParams {
        RmatParams::paper(10, 42)
    }

    #[test]
    fn generates_requested_count() {
        let p = small();
        let e = rmat_edges(&p);
        assert_eq!(e.len(), 1024 * 16);
        assert!(e
            .iter()
            .all(|&(i, j, _)| (i as usize) < 1024 && (j as usize) < 1024));
    }

    #[test]
    fn deterministic_for_seed() {
        let p = small();
        assert_eq!(rmat_edges(&p), rmat_edges(&p));
        let mut p2 = p;
        p2.seed = 43;
        assert_ne!(rmat_edges(&p), rmat_edges(&p2));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = small();
        let a = pcd_util::pool::with_threads(1, || rmat_edges(&p));
        let b = pcd_util::pool::with_threads(4, || rmat_edges(&p));
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_connected_component() {
        let g = rmat_graph(&small());
        assert!(g.num_vertices() > 0);
        assert_eq!(g.validate(), Ok(()));
        let labels = components(&g);
        assert_eq!(count_components(&labels), 1);
    }

    #[test]
    fn skew_toward_low_ids() {
        // Quadrant a=0.55 concentrates edges at low vertex ids; vertex ids
        // below the median should hold well over half the endpoints.
        let p = small();
        let e = rmat_edges(&p);
        let half = (p.num_vertices() / 2) as u32;
        let low = e
            .iter()
            .flat_map(|&(i, j, _)| [i, j])
            .filter(|&v| v < half)
            .count();
        assert!(
            low as f64 > 0.6 * (2 * e.len()) as f64,
            "low fraction {}",
            low
        );
    }

    #[test]
    fn weights_accumulate_duplicates() {
        let p = small();
        let g = rmat_graph(&p);
        // With 16K draws over ~1K vertices under heavy skew there must be
        // duplicate edges, i.e. some weight > 1.
        assert!(g.weights().iter().any(|&w| w > 1));
        // Total weight (plus dropped components/self loops) accounts for all
        // generated edges.
        assert!(g.total_weight() <= p.num_generated_edges() as u64);
        assert!(g.total_weight() > 0);
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn zero_scale_rejected() {
        rmat_edges(&RmatParams::paper(0, 1));
    }

    #[test]
    fn noise_zero_is_pure_rmat() {
        let mut p = small();
        p.noise = 0.0;
        let e = rmat_edges(&p);
        assert_eq!(e.len(), p.num_generated_edges());
    }
}
