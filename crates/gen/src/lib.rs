#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Graph generators for the paper's evaluation (§V-B) and for tests.
//!
//! * [`rmat`] — the R-MAT generator with the paper's parameters
//!   (`a = 0.55, b = c = 0.10, d = 0.25`, perturbed), duplicate-edge
//!   accumulation and largest-component extraction.
//! * [`sbm`] — a planted-partition generator with power-law community
//!   sizes, standing in for the soc-LiveJournal1 snapshot (community-rich,
//!   skewed degrees, with ground truth for quality metrics).
//! * [`web`] — a hierarchical nested-community generator standing in for
//!   the uk-2007-05 crawl (deep locality, power-law degrees, large scale).
//! * [`classic`] — deterministic small graphs: Zachary's karate club,
//!   cliques, rings, stars, paths, clique chains.
//!
//! All generators derive per-work-item RNG streams from `(seed, index)`, so
//! output is identical for every thread count.

pub mod classic;
pub mod er;
pub mod lfr;
pub mod rmat;
pub mod sbm;
pub mod smallworld;
pub mod web;

pub use er::erdos_renyi;
pub use lfr::{lfr_graph, LfrGraph, LfrParams};
pub use rmat::{rmat_edges, rmat_graph, RmatParams};
pub use sbm::{sbm_graph, SbmParams};
pub use smallworld::watts_strogatz;
pub use web::{web_graph, WebParams};
