//! Erdős–Rényi G(n, m-ish) random graphs — no community structure by
//! construction; the adversarial control case for quality experiments
//! (R-MAT's "known not to possess significant community structure" taken
//! to the extreme).

use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rayon::prelude::*;

/// Generates `edge_draws` uniform random endpoint pairs over `n` vertices
/// (duplicates accumulate, self-pairs become self-loops). Deterministic
/// and thread-count independent.
pub fn erdos_renyi(n: usize, edge_draws: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let edges: Vec<(VertexId, VertexId, Weight)> = (0..edge_draws as u64)
        .into_par_iter()
        .map(|idx| {
            let mut rng = stream(seed, idx);
            let i = rng.gen_range(0..n as u32);
            let mut j = rng.gen_range(0..n as u32);
            if i == j {
                j = (j + 1) % n as u32;
            }
            (i, j, 1u64)
        })
        .collect();
    builder::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_as_requested() {
        let g = erdos_renyi(500, 3_000, 1);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.total_weight(), 3_000);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(100, 500, 9);
        let b = erdos_renyi(100, 500, 9);
        assert_eq!(a.srcs(), b.srcs());
        assert_ne!(a.srcs(), erdos_renyi(100, 500, 10).srcs());
    }

    #[test]
    fn volumes_sum_to_twice_weight() {
        let g = erdos_renyi(1_000, 8_000, 3);
        let vols: u64 = g.volumes().iter().sum();
        assert_eq!(vols, 2 * g.total_weight());
    }

    #[test]
    fn degrees_concentrate() {
        // Binomial degrees: max degree stays within a small factor of the
        // mean, unlike R-MAT / web graphs.
        let g = erdos_renyi(2_000, 20_000, 5);
        let csr = pcd_graph::Csr::from_graph(&g);
        let s = pcd_graph::stats::degree_stats(&csr);
        assert!(
            (s.max as f64) < 4.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }
}
