//! Deterministic small graphs for tests and examples.

use pcd_graph::{Graph, GraphBuilder};
use pcd_util::VertexId;

/// Zachary's karate club (34 vertices, 78 edges) — the classic community
/// detection benchmark. The known fission splits it into two factions.
pub fn karate_club() -> Graph {
    const EDGES: [(u32, u32); 78] = [
        (1, 0),
        (2, 0),
        (2, 1),
        (3, 0),
        (3, 1),
        (3, 2),
        (4, 0),
        (5, 0),
        (6, 0),
        (6, 4),
        (6, 5),
        (7, 0),
        (7, 1),
        (7, 2),
        (7, 3),
        (8, 0),
        (8, 2),
        (9, 2),
        (10, 0),
        (10, 4),
        (10, 5),
        (11, 0),
        (12, 0),
        (12, 3),
        (13, 0),
        (13, 1),
        (13, 2),
        (13, 3),
        (16, 5),
        (16, 6),
        (17, 0),
        (17, 1),
        (19, 0),
        (19, 1),
        (21, 0),
        (21, 1),
        (25, 23),
        (25, 24),
        (27, 2),
        (27, 23),
        (27, 24),
        (28, 2),
        (29, 23),
        (29, 26),
        (30, 1),
        (30, 8),
        (31, 0),
        (31, 24),
        (31, 25),
        (31, 28),
        (32, 2),
        (32, 8),
        (32, 14),
        (32, 15),
        (32, 18),
        (32, 20),
        (32, 22),
        (32, 23),
        (32, 29),
        (32, 30),
        (32, 31),
        (33, 8),
        (33, 9),
        (33, 13),
        (33, 14),
        (33, 15),
        (33, 18),
        (33, 19),
        (33, 20),
        (33, 22),
        (33, 23),
        (33, 26),
        (33, 27),
        (33, 28),
        (33, 29),
        (33, 30),
        (33, 31),
        (33, 32),
    ];
    GraphBuilder::new(34).add_pairs(EDGES).build()
}

/// The known two-faction split of the karate club (Mr. Hi = 0, Officer = 1).
pub fn karate_factions() -> Vec<VertexId> {
    // Faction of each member, 0-indexed; the standard assignment.
    vec![
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1,
        1, 1, 1, 1,
    ]
}

/// Complete graph on `n` vertices.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            b = b.add_edge(i, j, 1);
        }
    }
    b.build()
}

/// Cycle on `n ≥ 3` vertices.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    GraphBuilder::new(n)
        .add_pairs((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
        .build()
}

/// Path on `n ≥ 2` vertices.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2);
    GraphBuilder::new(n)
        .add_pairs((0..n as u32 - 1).map(|i| (i, i + 1)))
        .build()
}

/// Star with `n ≥ 2` leaves around centre 0 — the paper's worst case for
/// contraction progress (only one pair merges per phase).
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1);
    GraphBuilder::new(leaves + 1)
        .add_pairs((1..=leaves as u32).map(|i| (0, i)))
        .build()
}

/// `k` cliques of size `s` joined in a ring by single bridge edges — an
/// unambiguous community structure for end-to-end tests.
pub fn clique_ring(k: usize, s: usize) -> Graph {
    assert!(k >= 2 && s >= 2);
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = (c * s) as u32;
        for i in 0..s as u32 {
            for j in i + 1..s as u32 {
                b = b.add_edge(base + i, base + j, 1);
            }
        }
        let next_base = (((c + 1) % k) * s) as u32;
        b = b.add_edge(base, next_base, 1);
    }
    b.build()
}

/// Ground-truth community labels for [`clique_ring`].
pub fn clique_ring_truth(k: usize, s: usize) -> Vec<VertexId> {
    (0..k * s).map(|v| (v / s) as u32).collect()
}

/// Complete bipartite graph `K(a, b)` — has no community structure under
/// modularity; a useful adversarial case.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for i in 0..a as u32 {
        for j in 0..b as u32 {
            g = g.add_edge(i, a as u32 + j, 1);
        }
    }
    g.build()
}

/// Two cliques of size `s` joined by one bridge — the minimal two-community
/// graph.
pub fn two_cliques(s: usize) -> Graph {
    assert!(s >= 2);
    let mut b = GraphBuilder::new(2 * s);
    for base in [0u32, s as u32] {
        for i in 0..s as u32 {
            for j in i + 1..s as u32 {
                b = b.add_edge(base + i, base + j, 1);
            }
        }
    }
    b.add_edge(0, s as u32, 1).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_shape() {
        let g = karate_club();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.total_weight(), 78);
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(karate_factions().len(), 34);
        // Connected.
        let l = pcd_graph::components::components(&g);
        assert_eq!(pcd_graph::components::count_components(&l), 1);
    }

    #[test]
    fn clique_edge_count() {
        let g = clique(6);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn ring_and_path() {
        assert_eq!(ring(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn clique_ring_shape() {
        let k = 4;
        let s = 5;
        let g = clique_ring(k, s);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), k * s * (s - 1) / 2 + k);
        let t = clique_ring_truth(k, s);
        assert_eq!(t[0], 0);
        assert_eq!(t[19], 3);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn two_cliques_shape() {
        let g = two_cliques(4);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
    }
}
