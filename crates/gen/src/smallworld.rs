//! Watts–Strogatz small-world graphs: a ring lattice with random rewiring.
//!
//! At low rewiring probability these have strong local clustering (ideal
//! for community detection); at `p = 1` they degenerate toward random
//! graphs. Useful for studying how detection quality decays with noise.

use pcd_graph::{builder, Graph};
use pcd_util::rng::stream;
use pcd_util::{VertexId, Weight};
use rand::Rng;
use rayon::prelude::*;

/// Watts–Strogatz: `n` vertices on a ring, each connected to its `k`
/// nearest clockwise neighbours (so degree ≈ 2k), each edge rewired to a
/// random endpoint with probability `p`. Deterministic per edge index.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 4 && k >= 1 && k < n / 2, "need 4 <= 2k+1 <= n");
    assert!((0.0..=1.0).contains(&p));
    let edges: Vec<(VertexId, VertexId, Weight)> = (0..(n * k) as u64)
        .into_par_iter()
        .map(|idx| {
            let v = (idx as usize) / k;
            let hop = (idx as usize) % k + 1;
            let mut rng = stream(seed, idx);
            let u = ((v + hop) % n) as u32;
            if rng.gen::<f64>() < p {
                // Rewire the far endpoint uniformly (avoiding a self-loop).
                let mut w = rng.gen_range(0..n as u32);
                if w == v as u32 {
                    w = (w + 1) % n as u32;
                }
                (v as u32, w, 1u64)
            } else {
                (v as u32, u, 1u64)
            }
        })
        .collect();
    builder::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_at_p_zero() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.total_weight(), 40);
        // Every vertex has exactly degree 4 (2k).
        let csr = pcd_graph::Csr::from_graph(&g);
        for v in 0..20u32 {
            assert_eq!(csr.degree(v), 4, "v{v}");
        }
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(50, 3, 0.3, 5);
        let b = watts_strogatz(50, 3, 0.3, 5);
        assert_eq!(a.srcs(), b.srcs());
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = watts_strogatz(100, 3, 0.0, 2);
        let rewired = watts_strogatz(100, 3, 0.5, 2);
        assert_ne!(lattice.srcs(), rewired.srcs());
        assert_eq!(lattice.total_weight(), 300);
        // Rewiring may merge duplicates, but total weight is conserved.
        assert_eq!(rewired.total_weight(), 300);
    }

    #[test]
    fn full_rewire_is_valid() {
        let g = watts_strogatz(64, 2, 1.0, 3);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "need 4 <= 2k+1 <= n")]
    fn rejects_oversized_k() {
        watts_strogatz(10, 5, 0.1, 1);
    }
}
