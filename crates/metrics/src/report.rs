//! Per-community reports: everything an analyst wants to know about each
//! detected community, computed in one parallel pass.

use pcd_graph::Graph;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::{VertexId, Weight};
use rayon::prelude::*;

/// Statistics of one community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityReport {
    /// Community id.
    pub id: VertexId,
    /// Member count.
    pub size: usize,
    /// Edge weight fully inside the community.
    pub internal_weight: Weight,
    /// Edge weight crossing the boundary.
    pub cut_weight: Weight,
    /// `2·internal + cut`.
    pub volume: Weight,
    /// `cut / min(vol, 2m − vol)`; 0 for isolated communities.
    pub conductance: f64,
    /// `internal / (size·(size−1)/2)` — fraction of possible internal
    /// pairs realised (unweighted view; >1 possible on multigraphs).
    pub internal_density: f64,
}

/// Builds a report per community (dense ids `0..k` expected; see
/// [`crate::compact_labels`]).
pub fn community_reports(g: &Graph, assignment: &[VertexId]) -> Vec<CommunityReport> {
    assert_eq!(assignment.len(), g.num_vertices());
    let k = assignment
        .par_iter()
        .copied()
        .max()
        .map_or(0, |x| x as usize + 1);
    let two_m = 2 * g.total_weight();

    let mut size = vec![0u64; k];
    let mut internal = vec![0u64; k];
    let mut cut = vec![0u64; k];
    {
        let size_c = as_atomic_u64(&mut size);
        let int_c = as_atomic_u64(&mut internal);
        let cut_c = as_atomic_u64(&mut cut);
        // ORDERING: RELAXED for every fetch_add in both loops — size/
        // internal/cut are pure accumulation histograms (atomicity only);
        // the join barriers publish the totals to the report assembly.
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let c = assignment[v] as usize;
            size_c[c].fetch_add(1, RELAXED);
            let s = g.self_loop(v as u32);
            if s > 0 {
                int_c[c].fetch_add(s, RELAXED);
            }
        });
        (0..g.num_edges()).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            let (ci, cj) = (
                assignment[i as usize] as usize,
                assignment[j as usize] as usize,
            );
            if ci == cj {
                int_c[ci].fetch_add(w, RELAXED);
            } else {
                cut_c[ci].fetch_add(w, RELAXED);
                cut_c[cj].fetch_add(w, RELAXED);
            }
        });
    }

    (0..k)
        .map(|c| {
            let volume = 2 * internal[c] + cut[c];
            let denom = volume.min(two_m - volume);
            let conductance = if denom == 0 {
                0.0
            } else {
                cut[c] as f64 / denom as f64
            };
            let pairs = size[c] * size[c].saturating_sub(1) / 2;
            CommunityReport {
                id: c as u32,
                size: size[c] as usize,
                internal_weight: internal[c],
                cut_weight: cut[c],
                volume,
                conductance,
                internal_density: if pairs == 0 {
                    0.0
                } else {
                    internal[c] as f64 / pairs as f64
                },
            }
        })
        .collect()
}

/// The `top` communities by size, descending (ties by id).
pub fn largest_communities(reports: &[CommunityReport], top: usize) -> Vec<&CommunityReport> {
    let mut refs: Vec<&CommunityReport> = reports.iter().collect();
    refs.sort_by_key(|r| (std::cmp::Reverse(r.size), r.id));
    refs.truncate(top);
    refs
}

impl std::fmt::Display for CommunityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "community {:>6}: {:>7} members, internal {:>9}, cut {:>8}, phi {:.4}, density {:.3}",
            self.id,
            self.size,
            self.internal_weight,
            self.cut_weight,
            self.conductance,
            self.internal_density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cliques_reports() {
        let g = pcd_gen::classic::two_cliques(5);
        let mut a = vec![0u32; 10];
        a[5..].iter_mut().for_each(|x| *x = 1);
        let reports = community_reports(&g, &a);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.size, 5);
            assert_eq!(r.internal_weight, 10);
            assert_eq!(r.cut_weight, 1);
            assert_eq!(r.volume, 21);
            assert!((r.internal_density - 1.0).abs() < 1e-12);
            assert!((r.conductance - 1.0 / 21.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reports_agree_with_conductance_module() {
        let g = pcd_gen::classic::clique_ring(5, 5);
        let a = pcd_gen::classic::clique_ring_truth(5, 5);
        let reports = community_reports(&g, &a);
        let phis = crate::community_conductances(&g, &a);
        for (r, phi) in reports.iter().zip(phis.iter()) {
            assert!((r.conductance - phi).abs() < 1e-12);
        }
    }

    #[test]
    fn volumes_sum_to_two_m() {
        let g = pcd_gen::classic::clique_ring(4, 6);
        let a = pcd_gen::classic::clique_ring_truth(4, 6);
        let reports = community_reports(&g, &a);
        let total: u64 = reports.iter().map(|r| r.volume).sum();
        assert_eq!(total, 2 * g.total_weight());
    }

    #[test]
    fn largest_sorted() {
        let g = pcd_graph::GraphBuilder::new(5)
            .add_pairs([(0, 1), (2, 3)])
            .build();
        let a = vec![0u32, 0, 1, 1, 2];
        let reports = community_reports(&g, &a);
        let top = largest_communities(&reports, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].size >= top[1].size);
        assert_eq!(top[0].id, 0); // tie between sizes 2 and 2 -> smaller id
    }

    #[test]
    fn display_formats() {
        let g = pcd_gen::classic::two_cliques(3);
        let reports = community_reports(&g, &[0, 0, 0, 1, 1, 1]);
        let s = reports[0].to_string();
        assert!(s.contains("members"));
    }
}
