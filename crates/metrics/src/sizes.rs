//! Community size distributions and coverage.

use pcd_graph::Graph;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::VertexId;
use rayon::prelude::*;

/// Number of members per community (dense ids assumed; use
/// [`crate::compact_labels`] first if needed).
pub fn community_sizes(assignment: &[VertexId]) -> Vec<usize> {
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |x| x as usize + 1);
    let mut sizes = vec![0u64; k];
    {
        let cells = as_atomic_u64(&mut sizes);
        assignment.par_iter().for_each(|&c| {
            // ORDERING: RELAXED — histogram increment, atomicity only;
            // the join barrier publishes the counts.
            cells[c as usize].fetch_add(1, RELAXED);
        });
    }
    sizes.into_iter().map(|s| s as usize).collect()
}

/// Summary of a community size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeStats {
    /// Non-empty community count.
    pub num_communities: usize,
    /// Smallest community size.
    pub min: usize,
    /// Largest community size.
    pub max: usize,
    /// Mean community size.
    pub mean: f64,
}

impl SizeStats {
    /// Summarises the sizes of an assignment.
    pub fn from_assignment(assignment: &[VertexId]) -> Self {
        let sizes = community_sizes(assignment);
        let nonempty: Vec<usize> = sizes.into_iter().filter(|&s| s > 0).collect();
        if nonempty.is_empty() {
            return SizeStats {
                num_communities: 0,
                min: 0,
                max: 0,
                mean: 0.0,
            };
        }
        SizeStats {
            num_communities: nonempty.len(),
            // analyze: allow(panic, reason = "the empty case early-returned above, so `nonempty` has entries")
            min: *nonempty.iter().min().unwrap(),
            // analyze: allow(panic, reason = "same non-empty argument as `min` on the previous line")
            max: *nonempty.iter().max().unwrap(),
            mean: nonempty.iter().sum::<usize>() as f64 / nonempty.len() as f64,
        }
    }
}

/// Coverage of `assignment` over `g`: fraction of total weight falling
/// inside communities (self-loops always count as internal).
pub fn coverage(g: &Graph, assignment: &[VertexId]) -> f64 {
    assert_eq!(assignment.len(), g.num_vertices());
    let m = g.total_weight();
    if m == 0 {
        return 1.0;
    }
    let internal_edges: u64 = (0..g.num_edges())
        .into_par_iter()
        .map(|e| {
            let (i, j, w) = g.edge(e);
            if assignment[i as usize] == assignment[j as usize] {
                w
            } else {
                0
            }
        })
        .sum();
    (internal_edges + g.internal_weight()) as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_counted() {
        assert_eq!(community_sizes(&[0, 1, 1, 2, 1]), vec![1, 3, 1]);
    }

    #[test]
    fn stats_skip_empty_ids() {
        // Community 1 unused.
        let s = SizeStats::from_assignment(&[0, 0, 2]);
        assert_eq!(s.num_communities, 2);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert_eq!(s.mean, 1.5);
    }

    #[test]
    fn coverage_of_perfect_split() {
        let g = pcd_gen::classic::two_cliques(5);
        let mut a = vec![0u32; 10];
        a[5..].iter_mut().for_each(|x| *x = 1);
        // 20 internal edges of 21 total.
        assert!((coverage(&g, &a) - 20.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_singletons_is_zero_without_self_loops() {
        let g = pcd_gen::classic::ring(6);
        let a: Vec<u32> = (0..6).collect();
        assert_eq!(coverage(&g, &a), 0.0);
    }

    #[test]
    fn coverage_all_in_one_is_one() {
        let g = pcd_gen::classic::ring(6);
        assert_eq!(coverage(&g, &[0; 6]), 1.0);
    }
}
