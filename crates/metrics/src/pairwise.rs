//! Pairwise-agreement metrics between two assignments: precision, recall,
//! F1 over co-membership pairs, and the van Dongen split-join distance.
//! These complement NMI/ARI with more interpretable numbers.

use pcd_util::VertexId;
use std::collections::HashMap;

/// Pairwise precision/recall/F1 of `predicted` against `truth`, counting
/// vertex pairs placed in the same community.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseScores {
    /// Fraction of predicted co-member pairs that are true pairs.
    pub precision: f64,
    /// Fraction of true co-member pairs recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes pairwise co-membership agreement via the contingency table
/// (O(n + #distinct pairs), no quadratic pair enumeration).
pub fn pairwise_scores(predicted: &[VertexId], truth: &[VertexId]) -> PairwiseScores {
    assert_eq!(predicted.len(), truth.len());
    let choose2 = |x: u64| x * x.saturating_sub(1) / 2;
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    let mut mp: HashMap<u32, u64> = HashMap::new();
    let mut mt: HashMap<u32, u64> = HashMap::new();
    for (&p, &t) in predicted.iter().zip(truth.iter()) {
        *joint.entry((p, t)).or_insert(0) += 1;
        *mp.entry(p).or_insert(0) += 1;
        *mt.entry(t).or_insert(0) += 1;
    }
    let tp: u64 = joint.values().map(|&c| choose2(c)).sum();
    let pred_pairs: u64 = mp.values().map(|&c| choose2(c)).sum();
    let true_pairs: u64 = mt.values().map(|&c| choose2(c)).sum();
    let precision = if pred_pairs == 0 {
        1.0
    } else {
        tp as f64 / pred_pairs as f64
    };
    let recall = if true_pairs == 0 {
        1.0
    } else {
        tp as f64 / true_pairs as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScores {
        precision,
        recall,
        f1,
    }
}

/// Van Dongen split-join distance, normalised to `[0, 1]`:
/// `1/(2n)·[(n − Σ_A max overlap) + (n − Σ_B max overlap)]`.
/// 0 = identical partitions.
pub fn split_join_distance(a: &[VertexId], b: &[VertexId]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        *joint.entry((x, y)).or_insert(0) += 1;
    }
    let mut best_a: HashMap<u32, u64> = HashMap::new();
    let mut best_b: HashMap<u32, u64> = HashMap::new();
    for (&(x, y), &c) in &joint {
        let ba = best_a.entry(x).or_insert(0);
        *ba = (*ba).max(c);
        let bb = best_b.entry(y).or_insert(0);
        *bb = (*bb).max(c);
    }
    let sa: u64 = best_a.values().sum();
    let sb: u64 = best_b.values().sum();
    ((n as u64 - sa) + (n as u64 - sb)) as f64 / (2 * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions() {
        let a = vec![0u32, 0, 1, 1, 2];
        let s = pairwise_scores(&a, &a);
        assert_eq!(
            s,
            PairwiseScores {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0
            }
        );
        assert_eq!(split_join_distance(&a, &a), 0.0);
    }

    #[test]
    fn relabelling_is_free() {
        let a = vec![0u32, 0, 1, 1];
        let b = vec![9u32, 9, 4, 4];
        assert_eq!(pairwise_scores(&a, &b).f1, 1.0);
        assert_eq!(split_join_distance(&a, &b), 0.0);
    }

    #[test]
    fn overmerging_hurts_precision_not_recall() {
        let truth = vec![0u32, 0, 1, 1];
        let pred = vec![0u32, 0, 0, 0];
        let s = pairwise_scores(&pred, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn oversplitting_hurts_recall_not_precision() {
        let truth = vec![0u32, 0, 0, 0];
        let pred = vec![0u32, 0, 1, 1];
        let s = pairwise_scores(&pred, &truth);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn split_join_symmetric_and_bounded() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        let b = vec![0u32, 1, 1, 2, 2, 0];
        let d1 = split_join_distance(&a, &b);
        let d2 = split_join_distance(&b, &a);
        assert_eq!(d1, d2);
        assert!(d1 > 0.0 && d1 <= 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(split_join_distance(&[], &[]), 0.0);
        let s = pairwise_scores(&[], &[]);
        assert_eq!(s.f1, 1.0);
    }
}
