//! Agreement between two community assignments: normalised mutual
//! information and the adjusted Rand index. Used to score detected
//! communities against the planted ground truth of generated graphs.

use pcd_util::VertexId;
use std::collections::HashMap;

/// Joint contingency counts between two assignments.
fn contingency(
    a: &[VertexId],
    b: &[VertexId],
) -> (
    HashMap<(u32, u32), u64>,
    HashMap<u32, u64>,
    HashMap<u32, u64>,
) {
    assert_eq!(a.len(), b.len());
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ma: HashMap<u32, u64> = HashMap::new();
    let mut mb: HashMap<u32, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        *joint.entry((x, y)).or_insert(0) += 1;
        *ma.entry(x).or_insert(0) += 1;
        *mb.entry(y).or_insert(0) += 1;
    }
    (joint, ma, mb)
}

/// Normalised mutual information in `[0, 1]`:
/// `NMI = 2·I(A;B) / (H(A) + H(B))`, with the convention that two
/// assignments that are both single-cluster (zero entropy) agree perfectly.
pub fn normalized_mutual_information(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let n = a.len() as f64;
    let (joint, ma, mb) = contingency(a, b);
    let h = |m: &HashMap<u32, u64>| -> f64 {
        m.values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ma);
    let hb = h(&mb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c as f64 / n;
        let px = ma[&x] as f64 / n;
        let py = mb[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Adjusted Rand index in `[-1, 1]` (1 = identical clustering, ~0 = random
/// agreement).
pub fn adjusted_rand_index(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let n = a.len() as f64;
    let (joint, ma, mb) = contingency(a, b);
    let choose2 = |x: u64| -> f64 {
        let x = x as f64;
        x * (x - 1.0) / 2.0
    };
    let sum_ij: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ma.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = mb.values().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_assignments_score_one() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_assignments_score_one() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        let b = vec![5u32, 5, 9, 9, 7, 7];
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_assignments_score_low() {
        // a splits front/back, b splits even/odd: independent.
        let a = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0u32, 1, 0, 1, 0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b) < 0.2);
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
    }

    #[test]
    fn single_cluster_pair_convention() {
        let a = vec![0u32; 5];
        assert_eq!(normalized_mutual_information(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn partial_agreement_between_zero_and_one() {
        let a = vec![0u32, 0, 0, 1, 1, 1];
        let b = vec![0u32, 0, 1, 1, 1, 1];
        let nmi = normalized_mutual_information(&a, &b);
        let ari = adjusted_rand_index(&a, &b);
        assert!(nmi > 0.0 && nmi < 1.0, "nmi = {nmi}");
        assert!(ari > 0.0 && ari < 1.0, "ari = {ari}");
    }
}
