//! Community conductance (normalised cut).
//!
//! For a community `c` with cut weight `cut_c` (edges leaving `c`) and
//! volume `vol_c`:
//!
//! ```text
//! φ(c) = cut_c / min(vol_c, 2m − vol_c)
//! ```
//!
//! Lower is better. The paper's conductance scorer negates the change so
//! that the maximisation machinery applies unchanged.

use pcd_graph::Graph;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::VertexId;
use rayon::prelude::*;

/// Per-community conductance under `assignment`. Communities with zero
/// volume (empty/isolated) report 0.
pub fn community_conductances(g: &Graph, assignment: &[VertexId]) -> Vec<f64> {
    assert_eq!(assignment.len(), g.num_vertices());
    let k = assignment
        .par_iter()
        .copied()
        .max()
        .map_or(0, |x| x as usize + 1);
    let two_m = 2 * g.total_weight();
    let mut cut = vec![0u64; k];
    let mut vol = vec![0u64; k];
    {
        let cut_c = as_atomic_u64(&mut cut);
        let vol_c = as_atomic_u64(&mut vol);
        // ORDERING: RELAXED for every fetch_add in both loops — cut/vol
        // are pure accumulation histograms (atomicity only); the join
        // barriers publish the totals to the sequential reads below.
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let s = g.self_loop(v as u32);
            if s > 0 {
                vol_c[assignment[v] as usize].fetch_add(2 * s, RELAXED);
            }
        });
        (0..g.num_edges()).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            let (ci, cj) = (
                assignment[i as usize] as usize,
                assignment[j as usize] as usize,
            );
            vol_c[ci].fetch_add(w, RELAXED);
            vol_c[cj].fetch_add(w, RELAXED);
            if ci != cj {
                cut_c[ci].fetch_add(w, RELAXED);
                cut_c[cj].fetch_add(w, RELAXED);
            }
        });
    }
    cut.par_iter()
        .zip(vol.par_iter())
        .map(|(&c, &v)| {
            let denom = v.min(two_m - v);
            if denom == 0 {
                0.0
            } else {
                c as f64 / denom as f64
            }
        })
        .collect()
}

/// Summary of a conductance distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConductanceStats {
    /// Unweighted mean conductance over non-empty communities.
    pub mean: f64,
    /// Worst (largest) conductance.
    pub max: f64,
    /// Weighted by community volume.
    pub volume_weighted_mean: f64,
}

/// Aggregates [`community_conductances`] (ignoring empty communities).
pub fn conductance_stats(g: &Graph, assignment: &[VertexId]) -> ConductanceStats {
    let phis = community_conductances(g, assignment);
    if phis.is_empty() {
        return ConductanceStats {
            mean: 0.0,
            max: 0.0,
            volume_weighted_mean: 0.0,
        };
    }
    // Volumes for weighting.
    let k = phis.len();
    let mut vol = vec![0u64; k];
    {
        let vol_c = as_atomic_u64(&mut vol);
        // ORDERING: RELAXED — volume accumulation, atomicity only; the
        // join barriers publish the totals to the filter below.
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let s = g.self_loop(v as u32);
            if s > 0 {
                vol_c[assignment[v] as usize].fetch_add(2 * s, RELAXED);
            }
        });
        (0..g.num_edges()).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            vol_c[assignment[i as usize] as usize].fetch_add(w, RELAXED);
            vol_c[assignment[j as usize] as usize].fetch_add(w, RELAXED);
        });
    }
    let nonempty: Vec<usize> = (0..k).filter(|&c| vol[c] > 0).collect();
    let n = nonempty.len().max(1) as f64;
    let mean = nonempty.iter().map(|&c| phis[c]).sum::<f64>() / n;
    let max = nonempty.iter().map(|&c| phis[c]).fold(0.0, f64::max);
    let total_vol: u64 = vol.iter().sum();
    let vw = if total_vol == 0 {
        0.0
    } else {
        nonempty
            .iter()
            .map(|&c| phis[c] * vol[c] as f64)
            .sum::<f64>()
            / total_vol as f64
    };
    ConductanceStats {
        mean,
        max,
        volume_weighted_mean: vw,
    }
}

/// Conductance delta used by the conductance scorer (see `pcd-core`):
/// the merged community's conductance minus the mean of the two parts',
/// negated so that positive = improvement.
#[inline]
pub fn neg_delta_conductance(
    two_m: u64,
    w_ij: u64,
    cut_i: u64,
    cut_j: u64,
    vol_i: u64,
    vol_j: u64,
) -> f64 {
    let phi = |cut: u64, vol: u64| -> f64 {
        let denom = vol.min(two_m - vol);
        if denom == 0 {
            0.0
        } else {
            cut as f64 / denom as f64
        }
    };
    let phi_i = phi(cut_i, vol_i);
    let phi_j = phi(cut_j, vol_j);
    let merged_cut = cut_i + cut_j - 2 * w_ij;
    let phi_merged = phi(merged_cut, vol_i + vol_j);
    0.5 * (phi_i + phi_j) - phi_merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_clique_has_zero_conductance() {
        let g = pcd_gen::classic::clique(4);
        let phis = community_conductances(&g, &[0; 4]);
        assert_eq!(phis, vec![0.0]);
    }

    #[test]
    fn two_cliques_split_has_small_conductance() {
        let g = pcd_gen::classic::two_cliques(5);
        let mut a = vec![0u32; 10];
        a[5..].iter_mut().for_each(|x| *x = 1);
        let phis = community_conductances(&g, &a);
        // One bridge edge over volume 21 per side.
        assert_eq!(phis.len(), 2);
        for phi in phis {
            assert!((phi - 1.0 / 21.0).abs() < 1e-12, "phi = {phi}");
        }
    }

    #[test]
    fn split_clique_has_high_conductance() {
        let g = pcd_gen::classic::clique(6);
        let a = vec![0, 0, 0, 1, 1, 1];
        let phis = community_conductances(&g, &a);
        // 9 cut edges, volume 15 per side: φ = 9/15.
        for phi in phis {
            assert!((phi - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_aggregate() {
        let g = pcd_gen::classic::two_cliques(5);
        let mut a = vec![0u32; 10];
        a[5..].iter_mut().for_each(|x| *x = 1);
        let s = conductance_stats(&g, &a);
        assert!((s.mean - 1.0 / 21.0).abs() < 1e-12);
        assert!((s.max - 1.0 / 21.0).abs() < 1e-12);
        assert!((s.volume_weighted_mean - 1.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn neg_delta_favours_merging_dense_pairs() {
        // Two halves of a clique want to merge (conductance drops to 0).
        let g = pcd_gen::classic::clique(6);
        let two_m = 2 * g.total_weight();
        // Each half: cut 9, vol 15; joining edge weight 9.
        let d = neg_delta_conductance(two_m, 9, 9, 9, 15, 15);
        assert!(d > 0.0, "d = {d}");
    }

    #[test]
    fn neg_delta_disfavours_bad_merges() {
        // Two communities that already hold nearly half the volume each:
        // merging pushes the union past half the graph, where the
        // normalising `min(vol, 2m − vol)` term collapses and conductance
        // explodes.
        let d = neg_delta_conductance(4000, 1, 100, 100, 1900, 1900);
        assert!(d < 0.0, "d = {d}");
    }

    #[test]
    fn neg_delta_rewards_cut_absorbing_merges() {
        // Thin cuts dominated by the joining edge: merging absorbs the cut.
        let d = neg_delta_conductance(4000, 1, 2, 2, 1000, 1000);
        assert!(d > 0.0, "d = {d}");
    }
}
