//! Newman–Girvan modularity.
//!
//! With `m` the total edge weight, `in_c` the weight inside community `c`
//! and `vol_c` its total degree weight (`Σ vol = 2m`):
//!
//! ```text
//! Q = Σ_c [ in_c / m  −  (vol_c / 2m)² ]
//! ```

use pcd_graph::Graph;
use pcd_util::sync::{as_atomic_u64, RELAXED};
use pcd_util::{VertexId, Weight};
use rayon::prelude::*;

/// Modularity of `assignment` over (possibly contracted) graph `g`.
/// `assignment[v]` is the community of vertex `v`; ids need not be dense.
pub fn modularity(g: &Graph, assignment: &[VertexId]) -> f64 {
    assert_eq!(assignment.len(), g.num_vertices());
    let m = g.total_weight();
    if m == 0 {
        return 0.0;
    }
    let k = assignment
        .par_iter()
        .copied()
        .max()
        .map_or(0, |x| x as usize + 1);

    let mut internal = vec![0u64; k];
    let mut volume = vec![0u64; k];
    {
        let in_c = as_atomic_u64(&mut internal);
        let vol_c = as_atomic_u64(&mut volume);
        // ORDERING: RELAXED for every fetch_add in both loops — internal/
        // volume are pure accumulation histograms (atomicity only); the
        // join barriers publish the totals to the Q fold below.
        (0..g.num_vertices()).into_par_iter().for_each(|v| {
            let c = assignment[v] as usize;
            let s = g.self_loop(v as u32);
            if s > 0 {
                in_c[c].fetch_add(s, RELAXED);
                vol_c[c].fetch_add(2 * s, RELAXED);
            }
        });
        (0..g.num_edges()).into_par_iter().for_each(|e| {
            let (i, j, w) = g.edge(e);
            let (ci, cj) = (
                assignment[i as usize] as usize,
                assignment[j as usize] as usize,
            );
            vol_c[ci].fetch_add(w, RELAXED);
            vol_c[cj].fetch_add(w, RELAXED);
            if ci == cj {
                in_c[ci].fetch_add(w, RELAXED);
            }
        });
    }
    q_from_terms(m, &internal, &volume)
}

/// Modularity of a *community graph* where every vertex is one community:
/// `in_c` is the vertex's self-loop, `vol_c` its volume. This is what the
/// agglomerative driver tracks level by level.
pub fn community_graph_modularity(g: &Graph) -> f64 {
    let vol = g.volumes();
    community_graph_modularity_with_vol(g, &vol)
}

/// As [`community_graph_modularity`], with the per-vertex volumes supplied
/// by the caller (the driver carries them through contraction instead of
/// recomputing per level). `vol` must equal `g.volumes()`.
pub fn community_graph_modularity_with_vol(g: &Graph, vol: &[Weight]) -> f64 {
    debug_assert_eq!(vol.len(), g.num_vertices());
    let m = g.total_weight();
    if m == 0 {
        return 0.0;
    }
    q_from_terms(m, g.self_loops(), vol)
}

fn q_from_terms(m: Weight, internal: &[Weight], volume: &[Weight]) -> f64 {
    let m = m as f64;
    internal
        .par_iter()
        .zip(volume.par_iter())
        .map(|(&inc, &vol)| {
            let frac = vol as f64 / (2.0 * m);
            inc as f64 / m - frac * frac
        })
        .sum()
}

/// Change in modularity from merging communities `i` and `j` connected by
/// weight `w_ij`, with volumes `vol_i`, `vol_j` (the CNM delta):
///
/// ```text
/// ΔQ = w_ij / m  −  vol_i · vol_j / (2 m²)
/// ```
#[inline]
pub fn delta_modularity(m: Weight, w_ij: Weight, vol_i: Weight, vol_j: Weight) -> f64 {
    let m = m as f64;
    w_ij as f64 / m - (vol_i as f64 * vol_j as f64) / (2.0 * m * m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcd_graph::GraphBuilder;

    #[test]
    fn singletons_have_negative_q_on_clique() {
        let g = pcd_gen::classic::clique(4);
        let q = modularity(&g, &[0, 1, 2, 3]);
        // All-singleton modularity = -Σ (vol/2m)² < 0.
        assert!(q < 0.0);
        // Equal to the community-graph form on the identity assignment.
        assert!((q - community_graph_modularity(&g)).abs() < 1e-12);
    }

    #[test]
    fn one_community_q_is_zero() {
        let g = pcd_gen::classic::clique(5);
        let q = modularity(&g, &[0; 5]);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn two_cliques_natural_split_is_good() {
        let g = pcd_gen::classic::two_cliques(5);
        let mut a = vec![0u32; 10];
        a[5..].iter_mut().for_each(|x| *x = 1);
        let q_split = modularity(&g, &a);
        let q_merged = modularity(&g, &[0; 10]);
        assert!(q_split > 0.4, "q_split = {q_split}");
        assert!(q_split > q_merged);
    }

    #[test]
    fn delta_matches_direct_difference() {
        // Merge communities 0 and 1 of a path of 3 singletons.
        let g = pcd_gen::classic::path(3);
        let q_before = modularity(&g, &[0, 1, 2]);
        let q_after = modularity(&g, &[0, 0, 2]);
        let vol = g.volumes();
        // Edge (0,1) has weight 1.
        let dq = delta_modularity(g.total_weight(), 1, vol[0], vol[1]);
        assert!((q_after - q_before - dq).abs() < 1e-12);
    }

    #[test]
    fn weighted_graph_modularity() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 10)
            .add_edge(2, 3, 10)
            .add_edge(1, 2, 1)
            .build();
        let q = modularity(&g, &[0, 0, 1, 1]);
        assert!(q > 0.4, "q = {q}");
    }

    #[test]
    fn community_graph_form_tracks_self_loops() {
        // A community graph of two super-vertices, heavy inside.
        let g = GraphBuilder::new(2)
            .add_self_loop(0, 10)
            .add_self_loop(1, 10)
            .add_edge(0, 1, 1)
            .build();
        let q = community_graph_modularity(&g);
        assert!(q > 0.4);
    }

    #[test]
    fn empty_graph_zero() {
        let g = pcd_graph::Graph::empty(3);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
        assert_eq!(community_graph_modularity(&g), 0.0);
    }

    #[test]
    fn q_bounded_above_by_one() {
        let g = pcd_gen::classic::clique_ring(6, 5);
        let truth = pcd_gen::classic::clique_ring_truth(6, 5);
        let q = modularity(&g, &truth);
        assert!(q <= 1.0 && q > 0.5, "q = {q}");
    }
}
