#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Community quality metrics.
//!
//! The paper optimises modularity (or negated conductance) and terminates
//! its performance runs at coverage ≥ 0.5; it leaves deep quality
//! evaluation to future work but sanity-checks modularity against SNAP.
//! This crate provides all three metrics over *either* view:
//!
//! * an original graph plus a community assignment (`Vec<community id>`),
//! * a contracted community graph, where each vertex *is* a community
//!   (self-loop = internal weight, volume = total degree weight).
//!
//! It also implements NMI and the adjusted Rand index against planted
//! ground truth — stronger evidence than the paper's qualitative check,
//! available because our LiveJournal stand-in is generated with known
//! communities.

pub mod conductance;
pub mod modularity;
pub mod nmi;
pub mod pairwise;
pub mod report;
pub mod sizes;

pub use conductance::{community_conductances, conductance_stats, ConductanceStats};
pub use modularity::{community_graph_modularity, community_graph_modularity_with_vol, modularity};
pub use nmi::{adjusted_rand_index, normalized_mutual_information};
pub use pairwise::{pairwise_scores, split_join_distance, PairwiseScores};
pub use report::{community_reports, largest_communities, CommunityReport};
pub use sizes::{community_sizes, coverage, SizeStats};

use pcd_util::VertexId;

/// Relabels an assignment to dense ids `0..k`, preserving structure.
/// Useful before NMI/size computations on sparse label sets.
pub fn compact_labels(assignment: &[VertexId]) -> (Vec<VertexId>, usize) {
    let mut map = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(assignment.len());
    for &a in assignment {
        let next = map.len() as VertexId;
        let id = *map.entry(a).or_insert(next);
        out.push(id);
    }
    (out, map.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_labels_dense() {
        let (l, k) = compact_labels(&[7, 3, 7, 9]);
        assert_eq!(k, 3);
        assert_eq!(l, vec![0, 1, 0, 2]);
    }

    #[test]
    fn compact_labels_empty() {
        let (l, k) = compact_labels(&[]);
        assert_eq!(k, 0);
        assert!(l.is_empty());
    }
}
