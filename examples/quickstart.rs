//! Quickstart: detect communities in a small social network.
//!
//! Run with: `cargo run --release --example quickstart`

use parcomm::prelude::*;

fn main() {
    // Zachary's karate club — the classic community-detection benchmark.
    let graph = parcomm::gen::classic::karate_club();
    println!(
        "karate club: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Default configuration: modularity scoring, the paper's improved
    // matching and contraction kernels, run to the local maximum.
    let result = detect(graph.clone(), &Config::default());

    println!(
        "found {} communities  (modularity {:.4}, coverage {:.2})",
        result.num_communities, result.modularity, result.coverage
    );
    println!("agglomeration levels: {}", result.levels.len());
    for lvl in &result.levels {
        println!(
            "  level {}: {:>3} communities -> merged {:>2} pairs, Q = {:.4}",
            lvl.level, lvl.num_vertices, lvl.pairs_merged, lvl.modularity
        );
    }

    // Membership of each detected community.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); result.num_communities];
    for (v, &c) in result.assignment.iter().enumerate() {
        members[c as usize].push(v as u32);
    }
    for (c, ms) in members.iter().enumerate() {
        println!("community {c}: {ms:?}");
    }

    // Compare against the known two-faction split.
    let factions = parcomm::gen::classic::karate_factions();
    let nmi = normalized_mutual_information(&result.assignment, &factions);
    println!("NMI vs the historical two-faction split: {nmi:.3}");
}
