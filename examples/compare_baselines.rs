//! Quality comparison: the paper's parallel agglomerative detector against
//! the sequential baselines (CNM, Louvain, label propagation) — the
//! quantitative version of the paper's "modularities appear reasonable
//! compared with … SNAP" remark.
//!
//! Run with: `cargo run --release --example compare_baselines`

use parcomm::baseline::{cnm, label_propagation, louvain};
use parcomm::prelude::*;
use std::time::Instant;

struct Row {
    method: &'static str,
    q: f64,
    cov: f64,
    communities: usize,
    nmi: Option<f64>,
    secs: f64,
}

fn run_all(name: &str, graph: &Graph, truth: Option<&[u32]>) {
    println!(
        "\n=== {name}: {} vertices, {} edges ===",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut rows = Vec::new();

    let eval = |a: &[u32], secs: f64, method: &'static str| -> Row {
        let (dense, k) = parcomm::metrics::compact_labels(a);
        Row {
            method,
            q: modularity(graph, &dense),
            cov: coverage(graph, &dense),
            communities: k,
            nmi: truth.map(|t| normalized_mutual_information(&dense, t)),
            secs,
        }
    };

    let t = Instant::now();
    let r = detect(graph.clone(), &Config::default());
    rows.push(eval(
        &r.assignment,
        t.elapsed().as_secs_f64(),
        "parallel-agglom",
    ));

    let t = Instant::now();
    let r = detect(
        graph.clone(),
        &Config::default().with_scorer(ScorerKind::Conductance),
    );
    rows.push(eval(
        &r.assignment,
        t.elapsed().as_secs_f64(),
        "parallel-conduct",
    ));

    let t = Instant::now();
    let a = cnm(graph);
    rows.push(eval(&a, t.elapsed().as_secs_f64(), "cnm (seq)"));

    let t = Instant::now();
    let a = louvain(graph);
    rows.push(eval(&a, t.elapsed().as_secs_f64(), "louvain (seq)"));

    let t = Instant::now();
    let a = label_propagation(graph, 50);
    rows.push(eval(&a, t.elapsed().as_secs_f64(), "labelprop (seq)"));

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "method", "Q", "cover", "#comm", "NMI", "time"
    );
    for row in rows {
        println!(
            "{:<18} {:>8.4} {:>8.3} {:>8} {:>8} {:>8.3}s",
            row.method,
            row.q,
            row.cov,
            row.communities,
            row.nmi.map_or("-".to_string(), |x| format!("{x:.3}")),
            row.secs
        );
    }
}

fn main() {
    let karate = parcomm::gen::classic::karate_club();
    let factions = parcomm::gen::classic::karate_factions();
    run_all("karate club", &karate, Some(&factions));

    let ring = parcomm::gen::classic::clique_ring(12, 8);
    let ring_truth = parcomm::gen::classic::clique_ring_truth(12, 8);
    run_all("clique ring 12x8", &ring, Some(&ring_truth));

    let sbm = parcomm::gen::sbm_graph(&parcomm::gen::SbmParams::livejournal_like(20_000, 11));
    run_all("sbm-lj 20k", &sbm.graph, Some(&sbm.ground_truth));

    let rmat = parcomm::gen::rmat_graph(&parcomm::gen::RmatParams::paper(12, 5));
    run_all("rmat-12-16", &rmat, None);
}
