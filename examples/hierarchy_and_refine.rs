//! Explore the agglomeration dendrogram level by level and apply the
//! refinement extension (the paper's declared future work).
//!
//! Run with: `cargo run --release --example hierarchy_and_refine`

use parcomm::core::refine::refine;
use parcomm::prelude::*;

fn main() {
    let sbm = parcomm::gen::sbm_graph(&parcomm::gen::SbmParams::livejournal_like(30_000, 3));
    let g = sbm.graph.clone();
    println!(
        "sbm-lj: {} vertices, {} edges, {} planted communities",
        g.num_vertices(),
        g.num_edges(),
        sbm.num_communities
    );

    // Record every level so any cut of the dendrogram is reconstructible.
    let result = detect(g.clone(), &Config::default().with_recorded_levels());

    println!("\ndendrogram cuts (level 0 = singletons):");
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>8}",
        "level", "communities", "Q", "coverage", "NMI"
    );
    for level in 0..=result.level_maps.len() {
        let a = result.assignment_at_level(level);
        let (dense, k) = parcomm::metrics::compact_labels(&a);
        let q = modularity(&g, &dense);
        let cov = coverage(&g, &dense);
        let nmi = normalized_mutual_information(&dense, &sbm.ground_truth);
        println!("{level:>6} {k:>12} {q:>10.4} {cov:>10.3} {nmi:>8.3}");
    }

    // Refinement: single-vertex moves that the pairwise matching cannot
    // express. The paper lists this as an area of active work.
    let refined = refine(&g, &result.assignment, 10);
    println!("\nrefinement:");
    println!("  Q before: {:.4}", refined.q_before);
    println!("  Q after:  {:.4}", refined.q_after);
    println!("  moves per sweep: {:?}", refined.moves_per_sweep);
    let nmi_before = normalized_mutual_information(&result.assignment, &sbm.ground_truth);
    let (dense, _) = parcomm::metrics::compact_labels(&refined.assignment);
    let nmi_after = normalized_mutual_information(&dense, &sbm.ground_truth);
    println!("  NMI vs planted: {nmi_before:.3} -> {nmi_after:.3}");

    let pw = parcomm::metrics::pairwise_scores(&dense, &sbm.ground_truth);
    println!(
        "  pairwise precision {:.3} / recall {:.3} / F1 {:.3}",
        pw.precision, pw.recall, pw.f1
    );
}
