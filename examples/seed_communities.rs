//! Local community detection from seed vertices (Andersen–Lang, the
//! paper's conductance reference [22]) contrasted with the global
//! agglomerative detector.
//!
//! Run with: `cargo run --release --example seed_communities`

use parcomm::baseline::seed_expand;
use parcomm::prelude::*;

fn main() {
    let sbm = parcomm::gen::sbm_graph(&parcomm::gen::SbmParams {
        num_vertices: 20_000,
        min_community: 30,
        max_community: 300,
        size_exponent: 1.6,
        internal_degree: 10.0,
        external_degree: 1.5,
        seed: 21,
    });
    let g = &sbm.graph;
    println!(
        "sbm graph: {} vertices, {} edges, {} planted communities",
        g.num_vertices(),
        g.num_edges(),
        sbm.num_communities
    );

    // Global detection once, for comparison.
    let global = detect(g.clone(), &Config::default());

    println!("\nseed expansion vs global community (5 random-ish seeds):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "seed", "planted size", "seed size", "global size", "precision", "phi"
    );
    for seed in [3u32, 1111, 4242, 9000, 17777] {
        let truth_c = sbm.ground_truth[seed as usize];
        let planted: usize = sbm.ground_truth.iter().filter(|&&c| c == truth_c).count();
        let local = seed_expand(g, seed, 4 * planted);
        let inside = local
            .members
            .iter()
            .filter(|&&v| sbm.ground_truth[v as usize] == truth_c)
            .count();
        let global_c = global.assignment[seed as usize];
        let global_size = global.assignment.iter().filter(|&&c| c == global_c).count();
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10.3} {:>10.4}",
            seed,
            planted,
            local.members.len(),
            global_size,
            inside as f64 / local.members.len() as f64,
            local.conductance
        );
    }
    println!(
        "\nglobal detector: {} communities, Q = {:.4}",
        global.num_communities, global.modularity
    );
}
