//! The paper's motivating pipeline: detect communities, then carve each
//! out as an independent subgraph small enough for conventional tools —
//! here we run per-community statistics and a second, local detection
//! inside the largest community.
//!
//! Run with: `cargo run --release --example community_subgraphs`

use parcomm::graph::extract::extract_communities;
use parcomm::prelude::*;

fn main() {
    let web = parcomm::gen::web_graph(&parcomm::gen::WebParams::uk_like(50_000, 5));
    let g = web.graph;
    println!(
        "web graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let result = detect(g.clone(), &Config::default());
    println!(
        "detected {} communities (Q = {:.4})\n",
        result.num_communities, result.modularity
    );

    let subs = extract_communities(&g, &result.assignment);
    let mut by_size: Vec<&_> = subs.iter().collect();
    by_size.sort_by_key(|s| std::cmp::Reverse(s.graph.num_vertices()));

    println!("largest 8 communities as standalone graphs:");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>9} {:>12}",
        "id", "vertices", "edges", "internal", "external", "clustering"
    );
    for s in by_size.iter().take(8) {
        let csr = parcomm::graph::Csr::from_graph(&s.graph);
        let cc = parcomm::graph::triangles::global_clustering_coefficient(&csr);
        println!(
            "{:>6} {:>9} {:>10} {:>10} {:>9} {:>12.4}",
            s.community,
            s.graph.num_vertices(),
            s.graph.num_edges(),
            s.graph.total_weight(),
            s.external_weight,
            cc
        );
    }

    // Zoom in: run detection again inside the biggest community (the
    // paper's "multi-level algorithms" use case).
    let biggest = by_size[0];
    let inner = detect(biggest.graph.clone(), &Config::default());
    println!(
        "\nzooming into community {}: {} sub-communities, Q = {:.4}",
        biggest.community, inner.num_communities, inner.modularity
    );

    // Sanity: the union of subgraph weights + half the external weights
    // accounts for the whole graph.
    let internal: u64 = subs.iter().map(|s| s.graph.total_weight()).sum();
    let external: u64 = subs.iter().map(|s| s.external_weight).sum();
    assert_eq!(internal + external / 2, g.total_weight());
    println!(
        "\naccounting check: internal {} + cross {} / 2 == total {}",
        internal,
        external,
        g.total_weight()
    );
}
