//! Community detection on a LiveJournal-like social network with planted
//! ground truth (the paper's soc-LiveJournal1 scenario).
//!
//! Run with: `cargo run --release --example social_network [num_vertices]`

use parcomm::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!("generating LiveJournal-like planted-partition graph, n = {n} ...");
    let params = parcomm::gen::SbmParams::livejournal_like(n, 42);
    let t = Instant::now();
    let sbm = parcomm::gen::sbm_graph(&params);
    println!(
        "  {} vertices, {} edges, {} planted communities  ({:.2}s)",
        sbm.graph.num_vertices(),
        sbm.graph.num_edges(),
        sbm.num_communities,
        t.elapsed().as_secs_f64()
    );

    // Quality mode: run to the modularity local maximum.
    let t = Instant::now();
    let result = detect(sbm.graph.clone(), &Config::default());
    let secs = t.elapsed().as_secs_f64();

    println!("\nagglomerative detection (local maximum):");
    println!("  time                {secs:.2}s");
    println!("  communities         {}", result.num_communities);
    println!("  modularity          {:.4}", result.modularity);
    println!("  coverage            {:.3}", result.coverage);
    println!(
        "  contraction share   {:.0}% of kernel time (paper: 40-80%)",
        100.0 * result.contraction_fraction()
    );
    let nmi = normalized_mutual_information(&result.assignment, &sbm.ground_truth);
    println!("  NMI vs planted      {nmi:.3}");

    println!("\nper-level trace:");
    println!("  level  communities      edges   pairs  rounds        Q   coverage");
    for l in &result.levels {
        println!(
            "  {:>5}  {:>11}  {:>9}  {:>6}  {:>6}  {:>7.4}  {:>9.3}",
            l.level,
            l.num_vertices,
            l.num_edges,
            l.pairs_merged,
            l.match_rounds,
            l.modularity,
            l.coverage
        );
    }

    // Performance mode: the paper's experiments stop at coverage >= 0.5.
    let t = Instant::now();
    let perf = detect(sbm.graph.clone(), &Config::paper_performance());
    println!(
        "\nperformance mode (stop at coverage >= 0.5): {:.2}s, {} levels, {} communities",
        t.elapsed().as_secs_f64(),
        perf.levels.len(),
        perf.num_communities
    );

    // Constrained mode: cap community size, as real applications do.
    let cap = (n / 100).max(10);
    let capped = detect(
        sbm.graph.clone(),
        &Config::default().with_max_community_size(cap),
    );
    let biggest = capped
        .community_vertex_counts
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "constrained mode (max community size {cap}): {} communities, largest has {biggest} members",
        capped.num_communities
    );
}
