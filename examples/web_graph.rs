//! Scaling study on a web-crawl-like graph (the paper's uk-2007-05
//! scenario): run the detector across a sweep of thread counts and report
//! time, speed-up and the phase breakdown.
//!
//! Run with: `cargo run --release --example web_graph [num_vertices]`

use parcomm::prelude::*;
use parcomm::util::pool::{sweep_thread_counts, with_threads};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    println!("generating web-crawl-like graph, n = {n} ...");
    let params = parcomm::gen::WebParams::uk_like(n, 7);
    let web = parcomm::gen::web_graph(&params);
    println!(
        "  {} vertices, {} edges, {} domains / {} sites",
        web.graph.num_vertices(),
        web.graph.num_edges(),
        web.num_domains,
        web.num_sites
    );

    // The paper's performance configuration: stop at coverage >= 0.5.
    let config = Config::paper_performance();
    let ne = web.graph.num_edges() as f64;

    println!("\nthreads      time     speedup   edges/s    contraction%");
    let mut t1 = None;
    for threads in sweep_thread_counts() {
        let g = web.graph.clone();
        let cfg = config.clone();
        let t = Instant::now();
        let result = with_threads(threads, move || detect(g, &cfg));
        let secs = t.elapsed().as_secs_f64();
        let base = *t1.get_or_insert(secs);
        println!(
            "{:>7}  {:>7.2}s  {:>9.2}x  {:>8.2e}  {:>12.0}%",
            threads,
            secs,
            base / secs,
            ne / secs,
            100.0 * result.contraction_fraction()
        );
    }

    // Check the hierarchy the detector finds against the planted one.
    let result = detect(web.graph.clone(), &Config::default());
    let nmi_site = normalized_mutual_information(&result.assignment, &web.site_of);
    let nmi_domain = normalized_mutual_information(&result.assignment, &web.domain_of);
    println!(
        "\nquality at local maximum: Q = {:.4}, NMI vs sites = {:.3}, vs domains = {:.3}",
        result.modularity, nmi_site, nmi_domain
    );
}
